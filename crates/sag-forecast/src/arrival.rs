//! Arrival model fitted from historical alert logs.
//!
//! For each alert type the model stores the pooled, sorted arrival times of
//! all historical days. The expected number of *remaining* alerts of a type
//! after time `τ` on a typical day is then simply the number of pooled
//! arrivals strictly later than `τ` divided by the number of historical days —
//! the empirical mean the paper estimates from its 41-day history windows.
//!
//! Non-stationary workloads (per-type volumes drifting day over day) break
//! the uniform pooling: the estimate lags the trend by half the history
//! window. [`ArrivalModel::fit_weighted`] therefore supports exponential
//! *day decay*: a history day aged `a` days contributes weight `decay^a`, so
//! recent days dominate the estimate. `decay = 1` recovers the paper's
//! uniform pooling exactly.

use sag_sim::{AlertTypeId, DayLog, TimeOfDay};

/// Pooled arrival times of one alert type with day-weight suffix sums.
#[derive(Debug, Clone, PartialEq, Default)]
struct TypePool {
    /// Sorted arrival seconds.
    times: Vec<u32>,
    /// `suffix_weight[i]` = total day weight of arrivals `times[i..]`;
    /// one element longer than `times` so the empty suffix is representable.
    suffix_weight: Vec<f64>,
}

impl TypePool {
    fn build(mut arrivals: Vec<(u32, f64)>) -> Self {
        arrivals.sort_by_key(|&(time, _)| time);
        let mut suffix_weight = vec![0.0; arrivals.len() + 1];
        for (i, &(_, w)) in arrivals.iter().enumerate().rev() {
            suffix_weight[i] = suffix_weight[i + 1] + w;
        }
        TypePool {
            times: arrivals.into_iter().map(|(time, _)| time).collect(),
            suffix_weight,
        }
    }

    /// Total weight of arrivals strictly after `time`.
    fn weight_after(&self, time: TimeOfDay) -> f64 {
        let idx = self.times.partition_point(|&s| s <= time.seconds());
        self.suffix_weight[idx]
    }
}

/// Empirical arrival model: expected remaining alerts per type vs. time.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalModel {
    /// Pooled sorted arrival times per type, with day-weight suffix sums.
    pools: Vec<TypePool>,
    /// Number of historical days the model was fitted on.
    num_days: usize,
    /// Total day weight (equals `num_days` for uniform pooling).
    total_weight: f64,
}

impl ArrivalModel {
    /// Fit the model on historical day logs for `num_types` alert types,
    /// weighting every day equally (the paper's estimator).
    ///
    /// Days may contain types outside `0..num_types`; those alerts are
    /// ignored. An empty history yields a model that predicts zero arrivals.
    #[must_use]
    pub fn fit(history: &[DayLog], num_types: usize) -> Self {
        Self::fit_weighted(history, num_types, 1.0)
    }

    /// Fit the model with exponential day decay: the most recent history day
    /// has weight 1, the day before `day_decay`, the one before that
    /// `day_decay²`, and so on. `day_decay = 1` is the uniform fit; values
    /// below 1 track non-stationary (drifting) arrival volumes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < day_decay <= 1`.
    #[must_use]
    pub fn fit_weighted(history: &[DayLog], num_types: usize, day_decay: f64) -> Self {
        assert!(
            day_decay > 0.0 && day_decay <= 1.0,
            "day_decay must be in (0, 1], got {day_decay}"
        );
        let mut pooled: Vec<Vec<(u32, f64)>> = vec![Vec::new(); num_types];
        let mut total_weight = 0.0;
        for (pos, day) in history.iter().enumerate() {
            let age = (history.len() - 1 - pos) as i32;
            let weight = day_decay.powi(age);
            total_weight += weight;
            for alert in day.alerts() {
                if alert.type_id.index() < num_types {
                    pooled[alert.type_id.index()].push((alert.time.seconds(), weight));
                }
            }
        }
        ArrivalModel {
            pools: pooled.into_iter().map(TypePool::build).collect(),
            num_days: history.len(),
            total_weight,
        }
    }

    /// Number of alert types the model covers.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.pools.len()
    }

    /// Number of historical days the model was fitted on.
    #[must_use]
    pub fn num_days(&self) -> usize {
        self.num_days
    }

    /// Expected number of alerts of `type_id` arriving strictly after `time`
    /// on a typical day (day-weighted when fitted with
    /// [`fit_weighted`](Self::fit_weighted)).
    #[must_use]
    pub fn expected_remaining(&self, type_id: AlertTypeId, time: TimeOfDay) -> f64 {
        if self.num_days == 0 {
            return 0.0;
        }
        let pool = match self.pools.get(type_id.index()) {
            Some(p) => p,
            None => return 0.0,
        };
        pool.weight_after(time) / self.total_weight
    }

    /// Expected remaining alerts after `time` for every type, ordered by type.
    #[must_use]
    pub fn expected_remaining_all(&self, time: TimeOfDay) -> Vec<f64> {
        (0..self.num_types())
            .map(|t| self.expected_remaining(AlertTypeId(t as u16), time))
            .collect()
    }

    /// Expected total number of alerts of `type_id` over a whole day — what
    /// the offline SSE baseline plans against.
    #[must_use]
    pub fn expected_daily_total(&self, type_id: AlertTypeId) -> f64 {
        self.expected_remaining(type_id, TimeOfDay::MIDNIGHT)
    }

    /// Expected daily totals for all types.
    #[must_use]
    pub fn expected_daily_totals(&self) -> Vec<f64> {
        self.expected_remaining_all(TimeOfDay::MIDNIGHT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_sim::{Alert, AlertCatalog, StreamConfig, StreamGenerator};

    fn alert(day: u32, h: u32, m: u32, ty: u16) -> Alert {
        Alert::benign(day, TimeOfDay::from_hms(h, m, 0), AlertTypeId(ty))
    }

    #[test]
    fn fit_on_hand_built_history() {
        let history = vec![
            DayLog::new(
                0,
                vec![alert(0, 9, 0, 0), alert(0, 14, 0, 0), alert(0, 10, 0, 1)],
            ),
            DayLog::new(1, vec![alert(1, 9, 30, 0), alert(1, 16, 0, 1)]),
        ];
        let model = ArrivalModel::fit(&history, 2);
        assert_eq!(model.num_days(), 2);
        assert_eq!(model.num_types(), 2);
        // Type 0: 3 alerts over 2 days => 1.5 expected per day from midnight.
        assert!((model.expected_daily_total(AlertTypeId(0)) - 1.5).abs() < 1e-12);
        // After 09:15 only the 09:30 and 14:00 alerts remain => 1.0 per day.
        let after = model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(9, 15, 0));
        assert!((after - 1.0).abs() < 1e-12);
        // After 23:00 nothing remains.
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(23, 0, 0)),
            0.0
        );
    }

    #[test]
    fn remaining_is_exclusive_of_the_query_time() {
        let history = vec![DayLog::new(0, vec![alert(0, 12, 0, 0)])];
        let model = ArrivalModel::fit(&history, 1);
        // An alert exactly at the query time does not count as "future".
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(12, 0, 0)),
            0.0
        );
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(11, 59, 59)),
            1.0
        );
    }

    #[test]
    fn empty_history_and_unknown_types_predict_zero() {
        let model = ArrivalModel::fit(&[], 3);
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::MIDNIGHT),
            0.0
        );
        let history = vec![DayLog::new(0, vec![alert(0, 9, 0, 0)])];
        let model = ArrivalModel::fit(&history, 1);
        assert_eq!(
            model.expected_remaining(AlertTypeId(5), TimeOfDay::MIDNIGHT),
            0.0
        );
    }

    #[test]
    fn daily_totals_track_table1_on_calibrated_streams() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(11));
        let history = gen.generate_days(41);
        let catalog = AlertCatalog::paper_table1();
        let model = ArrivalModel::fit(&history, catalog.len());
        for info in catalog.types() {
            let estimate = model.expected_daily_total(info.id);
            let tolerance = 4.0 * info.daily_std / (history.len() as f64).sqrt() + 1.0;
            assert!(
                (estimate - info.daily_mean).abs() < tolerance,
                "type {}: estimated {estimate}, expected {}",
                info.id,
                info.daily_mean
            );
        }
    }

    #[test]
    fn weighted_fit_with_unit_decay_matches_uniform_fit() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(19));
        let history = gen.generate_days(12);
        let uniform = ArrivalModel::fit(&history, 7);
        let weighted = ArrivalModel::fit_weighted(&history, 7, 1.0);
        for t in 0..7u16 {
            for hour in 0..24 {
                let now = TimeOfDay::from_hms(hour, 17, 0);
                assert_eq!(
                    uniform.expected_remaining(AlertTypeId(t), now),
                    weighted.expected_remaining(AlertTypeId(t), now),
                    "type {t} hour {hour}"
                );
            }
        }
    }

    #[test]
    fn day_decay_favours_recent_days() {
        // Old day: 8 alerts; recent day: 2 alerts. The uniform estimate is 5;
        // with strong decay the estimate approaches the recent day's 2.
        let old_day = DayLog::new(0, (0..8).map(|i| alert(0, 9 + i % 8, 0, 0)).collect());
        let new_day = DayLog::new(1, (0..2).map(|i| alert(1, 9 + i, 0, 0)).collect());
        let history = vec![old_day, new_day];
        let uniform = ArrivalModel::fit(&history, 1);
        assert!((uniform.expected_daily_total(AlertTypeId(0)) - 5.0).abs() < 1e-12);
        let decayed = ArrivalModel::fit_weighted(&history, 1, 0.25);
        // (8*0.25 + 2*1.0) / (0.25 + 1.0) = 3.2
        assert!((decayed.expected_daily_total(AlertTypeId(0)) - 3.2).abs() < 1e-12);
        let strongly = ArrivalModel::fit_weighted(&history, 1, 0.01);
        assert!(strongly.expected_daily_total(AlertTypeId(0)) < 2.1);
    }

    #[test]
    #[should_panic(expected = "day_decay")]
    fn out_of_range_decay_is_rejected() {
        let _ = ArrivalModel::fit_weighted(&[], 1, 0.0);
    }

    #[test]
    fn remaining_decreases_monotonically_over_the_day() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_single_type(4));
        let history = gen.generate_days(20);
        let model = ArrivalModel::fit(&history, 1);
        let mut prev = f64::INFINITY;
        for hour in 0..24 {
            let v = model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(hour, 0, 0));
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
