//! Arrival model fitted from historical alert logs.
//!
//! For each alert type the model stores the pooled, sorted arrival times of
//! all historical days. The expected number of *remaining* alerts of a type
//! after time `τ` on a typical day is then simply the number of pooled
//! arrivals strictly later than `τ` divided by the number of historical days —
//! the empirical mean the paper estimates from its 41-day history windows.

use sag_sim::{AlertTypeId, DayLog, TimeOfDay};

/// Empirical arrival model: expected remaining alerts per type vs. time.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalModel {
    /// Pooled sorted arrival seconds per type.
    pooled_times: Vec<Vec<u32>>,
    /// Number of historical days the model was fitted on.
    num_days: usize,
}

impl ArrivalModel {
    /// Fit the model on historical day logs for `num_types` alert types.
    ///
    /// Days may contain types outside `0..num_types`; those alerts are
    /// ignored. An empty history yields a model that predicts zero arrivals.
    #[must_use]
    pub fn fit(history: &[DayLog], num_types: usize) -> Self {
        let mut pooled: Vec<Vec<u32>> = vec![Vec::new(); num_types];
        for day in history {
            for alert in day.alerts() {
                if alert.type_id.index() < num_types {
                    pooled[alert.type_id.index()].push(alert.time.seconds());
                }
            }
        }
        for times in &mut pooled {
            times.sort_unstable();
        }
        ArrivalModel {
            pooled_times: pooled,
            num_days: history.len(),
        }
    }

    /// Number of alert types the model covers.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.pooled_times.len()
    }

    /// Number of historical days the model was fitted on.
    #[must_use]
    pub fn num_days(&self) -> usize {
        self.num_days
    }

    /// Expected number of alerts of `type_id` arriving strictly after `time`
    /// on a typical day.
    #[must_use]
    pub fn expected_remaining(&self, type_id: AlertTypeId, time: TimeOfDay) -> f64 {
        if self.num_days == 0 {
            return 0.0;
        }
        let times = match self.pooled_times.get(type_id.index()) {
            Some(t) => t,
            None => return 0.0,
        };
        let idx = times.partition_point(|&s| s <= time.seconds());
        (times.len() - idx) as f64 / self.num_days as f64
    }

    /// Expected remaining alerts after `time` for every type, ordered by type.
    #[must_use]
    pub fn expected_remaining_all(&self, time: TimeOfDay) -> Vec<f64> {
        (0..self.num_types())
            .map(|t| self.expected_remaining(AlertTypeId(t as u16), time))
            .collect()
    }

    /// Expected total number of alerts of `type_id` over a whole day — what
    /// the offline SSE baseline plans against.
    #[must_use]
    pub fn expected_daily_total(&self, type_id: AlertTypeId) -> f64 {
        self.expected_remaining(type_id, TimeOfDay::MIDNIGHT)
    }

    /// Expected daily totals for all types.
    #[must_use]
    pub fn expected_daily_totals(&self) -> Vec<f64> {
        self.expected_remaining_all(TimeOfDay::MIDNIGHT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_sim::{Alert, AlertCatalog, StreamConfig, StreamGenerator};

    fn alert(day: u32, h: u32, m: u32, ty: u16) -> Alert {
        Alert::benign(day, TimeOfDay::from_hms(h, m, 0), AlertTypeId(ty))
    }

    #[test]
    fn fit_on_hand_built_history() {
        let history = vec![
            DayLog::new(
                0,
                vec![alert(0, 9, 0, 0), alert(0, 14, 0, 0), alert(0, 10, 0, 1)],
            ),
            DayLog::new(1, vec![alert(1, 9, 30, 0), alert(1, 16, 0, 1)]),
        ];
        let model = ArrivalModel::fit(&history, 2);
        assert_eq!(model.num_days(), 2);
        assert_eq!(model.num_types(), 2);
        // Type 0: 3 alerts over 2 days => 1.5 expected per day from midnight.
        assert!((model.expected_daily_total(AlertTypeId(0)) - 1.5).abs() < 1e-12);
        // After 09:15 only the 09:30 and 14:00 alerts remain => 1.0 per day.
        let after = model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(9, 15, 0));
        assert!((after - 1.0).abs() < 1e-12);
        // After 23:00 nothing remains.
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(23, 0, 0)),
            0.0
        );
    }

    #[test]
    fn remaining_is_exclusive_of_the_query_time() {
        let history = vec![DayLog::new(0, vec![alert(0, 12, 0, 0)])];
        let model = ArrivalModel::fit(&history, 1);
        // An alert exactly at the query time does not count as "future".
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(12, 0, 0)),
            0.0
        );
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(11, 59, 59)),
            1.0
        );
    }

    #[test]
    fn empty_history_and_unknown_types_predict_zero() {
        let model = ArrivalModel::fit(&[], 3);
        assert_eq!(
            model.expected_remaining(AlertTypeId(0), TimeOfDay::MIDNIGHT),
            0.0
        );
        let history = vec![DayLog::new(0, vec![alert(0, 9, 0, 0)])];
        let model = ArrivalModel::fit(&history, 1);
        assert_eq!(
            model.expected_remaining(AlertTypeId(5), TimeOfDay::MIDNIGHT),
            0.0
        );
    }

    #[test]
    fn daily_totals_track_table1_on_calibrated_streams() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(11));
        let history = gen.generate_days(41);
        let catalog = AlertCatalog::paper_table1();
        let model = ArrivalModel::fit(&history, catalog.len());
        for info in catalog.types() {
            let estimate = model.expected_daily_total(info.id);
            let tolerance = 4.0 * info.daily_std / (history.len() as f64).sqrt() + 1.0;
            assert!(
                (estimate - info.daily_mean).abs() < tolerance,
                "type {}: estimated {estimate}, expected {}",
                info.id,
                info.daily_mean
            );
        }
    }

    #[test]
    fn remaining_decreases_monotonically_over_the_day() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_single_type(4));
        let history = gen.generate_days(20);
        let model = ArrivalModel::fit(&history, 1);
        let mut prev = f64::INFINITY;
        for hour in 0..24 {
            let v = model.expected_remaining(AlertTypeId(0), TimeOfDay::from_hms(hour, 0, 0));
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
