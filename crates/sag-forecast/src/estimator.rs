//! The estimator the audit-cycle engine consumes: arrival model + rollback.

use crate::arrival::ArrivalModel;
use crate::rollback::RollbackPolicy;
use sag_sim::{AlertTypeId, DayLog, TimeOfDay};

/// Online estimator of future alert counts, with knowledge rollback.
///
/// The engine drives it as follows: for each incoming alert it queries
/// [`estimate_all`](FutureAlertEstimator::estimate_all) *before* updating any
/// state, then calls [`observe_alert`](FutureAlertEstimator::observe_alert)
/// so that the rollback anchor advances to the alert just processed.
#[derive(Debug, Clone, PartialEq)]
pub struct FutureAlertEstimator {
    model: ArrivalModel,
    rollback: RollbackPolicy,
    /// Arrival time of the most recently observed (previous) alert.
    last_alert_time: Option<TimeOfDay>,
}

impl FutureAlertEstimator {
    /// Build an estimator from a fitted model and rollback policy.
    #[must_use]
    pub fn new(model: ArrivalModel, rollback: RollbackPolicy) -> Self {
        FutureAlertEstimator {
            model,
            rollback,
            last_alert_time: None,
        }
    }

    /// Convenience constructor: fit on history with the paper's rollback.
    #[must_use]
    pub fn from_history(history: &[DayLog], num_types: usize) -> Self {
        Self::new(
            ArrivalModel::fit(history, num_types),
            RollbackPolicy::paper_default(),
        )
    }

    /// The underlying arrival model.
    #[must_use]
    pub fn model(&self) -> &ArrivalModel {
        &self.model
    }

    /// The rollback policy in effect.
    #[must_use]
    pub fn rollback(&self) -> RollbackPolicy {
        self.rollback
    }

    /// Number of alert types covered.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.model.num_types()
    }

    /// Record that an alert arrived at `time`; future queries may roll back
    /// to the estimate at this time.
    pub fn observe_alert(&mut self, time: TimeOfDay) {
        self.last_alert_time = Some(time);
    }

    /// Reset the rollback anchor (start of a new audit cycle).
    pub fn reset_cycle(&mut self) {
        self.last_alert_time = None;
    }

    /// Expected number of future alerts of `type_id` after `now`, with
    /// knowledge rollback applied.
    #[must_use]
    pub fn estimate(&self, type_id: AlertTypeId, now: TimeOfDay) -> f64 {
        let raw = self.model.expected_remaining(type_id, now);
        let at_prev = self
            .last_alert_time
            .map(|t| self.model.expected_remaining(type_id, t));
        self.rollback.apply(raw, at_prev)
    }

    /// Estimates for every type, ordered by type id.
    #[must_use]
    pub fn estimate_all(&self, now: TimeOfDay) -> Vec<f64> {
        let mut out = Vec::new();
        self.estimate_all_into(now, &mut out);
        out
    }

    /// [`estimate_all`](Self::estimate_all) into a caller-provided buffer, so
    /// per-alert hot paths (one estimate vector per pushed alert) perform no
    /// allocation in the steady state. The buffer is cleared first.
    pub fn estimate_all_into(&self, now: TimeOfDay, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.num_types()).map(|t| self.estimate(AlertTypeId(t as u16), now)));
    }

    /// Expected whole-day totals (used by the offline SSE baseline).
    #[must_use]
    pub fn expected_daily_totals(&self) -> Vec<f64> {
        self.model.expected_daily_totals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_sim::Alert;

    fn history() -> Vec<DayLog> {
        // Ten identical days, each with 10 type-0 alerts between 08:00 and
        // 17:00 and nothing afterwards.
        (0..10)
            .map(|d| {
                let alerts = (0..10)
                    .map(|i| Alert::benign(d, TimeOfDay::from_hms(8 + i, 0, 0), AlertTypeId(0)))
                    .collect();
                DayLog::new(d, alerts)
            })
            .collect()
    }

    #[test]
    fn estimates_without_rollback_track_the_model() {
        let model = ArrivalModel::fit(&history(), 1);
        let est = FutureAlertEstimator::new(model.clone(), RollbackPolicy::disabled());
        for hour in 0..24 {
            let now = TimeOfDay::from_hms(hour, 30, 0);
            assert_eq!(
                est.estimate(AlertTypeId(0), now),
                model.expected_remaining(AlertTypeId(0), now)
            );
        }
    }

    #[test]
    fn rollback_props_up_late_day_estimates() {
        let mut est = FutureAlertEstimator::from_history(&history(), 1);
        // Mid-afternoon alert: plenty of future alerts, estimate is raw.
        let afternoon = TimeOfDay::from_hms(13, 30, 0);
        let raw_afternoon = est.model().expected_remaining(AlertTypeId(0), afternoon);
        assert!(raw_afternoon >= 3.0);
        assert_eq!(est.estimate(AlertTypeId(0), afternoon), raw_afternoon);
        est.observe_alert(afternoon);

        // Late-evening alert: raw estimate is 0 (below threshold 4), so the
        // estimator rolls back to the afternoon estimate.
        let evening = TimeOfDay::from_hms(22, 0, 0);
        let raw_evening = est.model().expected_remaining(AlertTypeId(0), evening);
        assert_eq!(raw_evening, 0.0);
        assert_eq!(est.estimate(AlertTypeId(0), evening), raw_afternoon);
    }

    #[test]
    fn reset_cycle_clears_the_anchor() {
        let mut est = FutureAlertEstimator::from_history(&history(), 1);
        est.observe_alert(TimeOfDay::from_hms(12, 0, 0));
        est.reset_cycle();
        let evening = TimeOfDay::from_hms(22, 0, 0);
        assert_eq!(est.estimate(AlertTypeId(0), evening), 0.0);
    }

    #[test]
    fn estimate_all_is_ordered_by_type() {
        let days = vec![DayLog::new(
            0,
            vec![
                Alert::benign(0, TimeOfDay::from_hms(9, 0, 0), AlertTypeId(0)),
                Alert::benign(0, TimeOfDay::from_hms(9, 0, 0), AlertTypeId(1)),
                Alert::benign(0, TimeOfDay::from_hms(9, 0, 0), AlertTypeId(1)),
            ],
        )];
        let est =
            FutureAlertEstimator::new(ArrivalModel::fit(&days, 2), RollbackPolicy::disabled());
        let all = est.estimate_all(TimeOfDay::MIDNIGHT);
        assert_eq!(all, vec![1.0, 2.0]);
        assert_eq!(est.expected_daily_totals(), vec![1.0, 2.0]);
        assert_eq!(est.num_types(), 2);
    }
}
