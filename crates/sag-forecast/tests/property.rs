//! Property-based tests for the forecasting substrate.

use proptest::prelude::*;
use sag_forecast::{
    expected_inverse_positive, poisson_pmf, ArrivalModel, FutureAlertEstimator, RollbackPolicy,
};
use sag_sim::{Alert, AlertTypeId, DayLog, TimeOfDay};

fn arbitrary_history() -> impl Strategy<Value = Vec<DayLog>> {
    let alert = (0u32..86_400, 0u16..4)
        .prop_map(|(secs, ty)| Alert::benign(0, TimeOfDay::from_seconds(secs), AlertTypeId(ty)));
    proptest::collection::vec(proptest::collection::vec(alert, 0..80), 1..12).prop_map(|days| {
        days.into_iter()
            .enumerate()
            .map(|(d, mut alerts)| {
                for a in &mut alerts {
                    a.day = d as u32;
                }
                DayLog::new(d as u32, alerts)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The expected-remaining curve is nonincreasing in time, nonnegative, and
    /// starts at the empirical daily mean.
    #[test]
    fn expected_remaining_is_a_decreasing_curve(history in arbitrary_history()) {
        let model = ArrivalModel::fit(&history, 4);
        for t in 0..4u16 {
            let id = AlertTypeId(t);
            let total = model.expected_daily_total(id);
            prop_assert!(total >= 0.0);
            let mut last = f64::INFINITY;
            for hour in 0..24 {
                let v = model.expected_remaining(id, TimeOfDay::from_hms(hour, 0, 0));
                prop_assert!(v >= 0.0);
                prop_assert!(v <= last + 1e-12);
                prop_assert!(v <= total + 1e-12);
                last = v;
            }
            prop_assert_eq!(model.expected_remaining(id, TimeOfDay::END_OF_DAY), 0.0);
        }
    }

    /// Rollback never lowers an estimate and is the identity above threshold
    /// or when disabled.
    #[test]
    fn rollback_only_props_estimates_up(raw in 0.0f64..50.0, prev in 0.0f64..50.0, threshold in 0.0f64..10.0) {
        let policy = RollbackPolicy { enabled: true, threshold };
        let adjusted = policy.apply(raw, Some(prev));
        prop_assert!(adjusted >= raw - 1e-12);
        if raw >= threshold {
            prop_assert_eq!(adjusted, raw);
        }
        let disabled = RollbackPolicy::disabled();
        prop_assert_eq!(disabled.apply(raw, Some(prev)), raw);
    }

    /// The estimator with rollback is bounded between the raw curve and the
    /// whole-day total.
    #[test]
    fn estimator_stays_within_model_bounds(history in arbitrary_history(), anchor_hour in 0u32..24, query_hour in 0u32..24) {
        let model = ArrivalModel::fit(&history, 4);
        let mut estimator = FutureAlertEstimator::new(model.clone(), RollbackPolicy::paper_default());
        estimator.observe_alert(TimeOfDay::from_hms(anchor_hour, 0, 0));
        for t in 0..4u16 {
            let id = AlertTypeId(t);
            let now = TimeOfDay::from_hms(query_hour, 30, 0);
            let estimate = estimator.estimate(id, now);
            prop_assert!(estimate >= model.expected_remaining(id, now) - 1e-12);
            prop_assert!(estimate <= model.expected_daily_total(id) + 1e-12);
        }
    }

    /// Poisson pmf is a distribution and `E[1/max(d,1)]` is within (0, 1] and
    /// decreasing in the rate.
    #[test]
    fn poisson_quantities_are_well_behaved(lambda in 0.0f64..300.0) {
        let k_max = (lambda + 12.0 * lambda.sqrt() + 30.0) as u64;
        let total: f64 = (0..=k_max).map(|k| poisson_pmf(lambda, k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf sums to {total}");
        let inv = expected_inverse_positive(lambda);
        prop_assert!(inv > 0.0 && inv <= 1.0);
        let inv_larger_rate = expected_inverse_positive(lambda + 5.0);
        prop_assert!(inv_larger_rate <= inv + 1e-12);
    }
}
