//! # sag-cluster — horizontal tenant sharding for the SAG audit service
//!
//! The paper's online signaling scheme is per-tenant-independent by
//! construction: each tenant's audit game solves against its own history,
//! budget and alert stream. This crate exploits that to scale the
//! [`sag_service::AuditService`] front door horizontally:
//!
//! * [`ShardRouter`] — a stateless consistent hash placing every
//!   [`sag_service::TenantId`] on exactly one of N shards, plus the
//!   session-id bijection (`cluster = local × N + shard`) that lets shards
//!   mint ids without coordinating.
//! * [`ClusterBuilder`] / [`ClusterService`] — N fully independent
//!   `AuditService` shards (own engines, own worker pool, own counters,
//!   own WAL directory) behind the same typed
//!   [`Request`](sag_service::Request)/[`Response`](sag_service::Response)
//!   API as the unsharded service.
//!
//! Because shards never share state, per-tenant results are
//! **bitwise-identical regardless of shard count** — the registry-wide
//! suites in `sag-scenarios` replay every scenario at 1/2/4/8 shards
//! against the unsharded control — and recovery is **shard-local**: one
//! shard's crash is recovered from `<dir>/shard-<i>` with
//! [`ClusterBuilder::recover_shard`] while every other shard keeps serving.
//!
//! The network front door lives in `sag-net`: `Server::start_cluster` gives
//! each shard its own service thread behind one listener, with `/metrics`
//! and `/healthz` aggregating across shards.

#![forbid(unsafe_code)]

mod cluster;
mod router;

#[cfg(feature = "wal")]
pub use cluster::shard_wal_dir;
pub use cluster::{ClusterBuilder, ClusterService};
pub use router::ShardRouter;
