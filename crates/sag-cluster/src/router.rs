//! Deterministic tenant → shard assignment and the session-id arithmetic
//! that lets N independent shards mint ids without coordinating.
//!
//! ## Tenant placement
//!
//! A [`ShardRouter`] hashes the tenant id's bytes with FNV-1a and reduces
//! modulo the shard count. The map is **total** (every tenant id lands on
//! exactly one shard) and **deterministic** (a pure function of the id
//! string and the shard count), so any process that knows the shard count —
//! a fresh router after a restart, the load generator on the other side of
//! a socket — computes the same placement with no shared state.
//!
//! ## Session-id translation
//!
//! Each shard's [`sag_service::AuditService`] mints its own dense local
//! session ids starting at 0. The cluster-visible id interleaves them:
//!
//! ```text
//! cluster_id = local_id * num_shards + shard_index
//! shard      = cluster_id % num_shards
//! local_id   = cluster_id / num_shards
//! ```
//!
//! The encoding is a bijection, so cluster ids never collide across shards,
//! the owning shard is recoverable from the id alone (no routing table),
//! and — because WAL recovery rebuilds each shard's local id sequence
//! exactly — a cluster id stays valid across a crash and
//! `recover_from` of its shard. With one shard the translation is the
//! identity, so a 1-shard cluster is bitwise the unsharded service.

use sag_service::{Request, Response, ServiceError, SessionId, TenantId};

/// FNV-1a over the tenant id's UTF-8 bytes: tiny, dependency-free, and
/// stable across platforms and releases (the placement is part of the WAL
/// directory layout, so it must never drift).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Pure tenant → shard placement plus the cluster/local session-id
/// bijection. `Copy`, stateless, and cheap enough to keep per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter {
            shards: shards.max(1),
        }
    }

    /// How many shards this router spreads tenants across.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `tenant` — total and deterministic.
    #[must_use]
    pub fn shard_for(&self, tenant: &TenantId) -> usize {
        (fnv1a(tenant.as_str().as_bytes()) % self.shards as u64) as usize
    }

    /// The shard that minted the cluster-form `session` id.
    #[must_use]
    pub fn shard_for_session(&self, session: SessionId) -> usize {
        (session.raw() % self.shards as u64) as usize
    }

    /// The shard a request must be served by: `OpenDay` goes to its
    /// tenant's shard, session-scoped commands go to the shard encoded in
    /// the session id (which, for ids the cluster minted, is the same
    /// shard — a tenant's sessions always live where the tenant does).
    #[must_use]
    pub fn shard_for_request(&self, request: &Request) -> usize {
        match request {
            Request::OpenDay { tenant, .. } => self.shard_for(tenant),
            Request::PushAlert { session, .. } | Request::FinishDay { session } => {
                self.shard_for_session(*session)
            }
        }
    }

    /// Encode a shard-local session id as its cluster-visible form.
    #[must_use]
    pub fn to_cluster_session(&self, local: SessionId, shard: usize) -> SessionId {
        SessionId::from_raw(local.raw() * self.shards as u64 + shard as u64)
    }

    /// Decode a cluster-visible session id to the owning shard's local id.
    #[must_use]
    pub fn to_local_session(&self, cluster: SessionId) -> SessionId {
        SessionId::from_raw(cluster.raw() / self.shards as u64)
    }

    /// Rewrite a request's session ids from cluster form to the local form
    /// the owning shard understands. Must only be handed to the shard
    /// [`shard_for_request`](Self::shard_for_request) names: translating
    /// for any other shard would alias an unrelated local id.
    #[must_use]
    pub fn to_local(&self, request: Request) -> Request {
        match request {
            open @ Request::OpenDay { .. } => open,
            Request::PushAlert { session, alert } => Request::PushAlert {
                session: self.to_local_session(session),
                alert,
            },
            Request::FinishDay { session } => Request::FinishDay {
                session: self.to_local_session(session),
            },
        }
    }

    /// Rewrite a response's session ids from `shard`'s local form to the
    /// cluster-visible form clients hold.
    #[must_use]
    pub fn to_cluster(&self, response: Response, shard: usize) -> Response {
        match response {
            Response::DayOpened { session, tenant } => Response::DayOpened {
                session: self.to_cluster_session(session, shard),
                tenant,
            },
            Response::Decision { session, outcome } => Response::Decision {
                session: self.to_cluster_session(session, shard),
                outcome,
            },
            Response::DayClosed {
                session,
                tenant,
                result,
            } => Response::DayClosed {
                session: self.to_cluster_session(session, shard),
                tenant,
                result,
            },
        }
    }

    /// Rewrite the session id inside a shard's error to cluster form, so a
    /// rejected request echoes the id the caller actually sent.
    #[must_use]
    pub fn to_cluster_error(&self, error: ServiceError, shard: usize) -> ServiceError {
        match error {
            ServiceError::UnknownSession(session) => {
                ServiceError::UnknownSession(self.to_cluster_session(session, shard))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_total_and_deterministic() {
        for shards in [1usize, 2, 3, 4, 8, 16] {
            let router = ShardRouter::new(shards);
            for t in 0..200 {
                let tenant = TenantId::new(format!("tenant-{t}"));
                let first = router.shard_for(&tenant);
                assert!(first < shards, "{tenant} escaped the ring");
                assert_eq!(first, router.shard_for(&tenant), "placement drifted");
                assert_eq!(first, ShardRouter::new(shards).shard_for(&tenant));
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let router = ShardRouter::new(0);
        assert_eq!(router.num_shards(), 1);
        assert_eq!(router.shard_for(&TenantId::from("t")), 0);
    }

    #[test]
    fn session_translation_is_a_bijection() {
        for shards in [1usize, 2, 4, 8] {
            let router = ShardRouter::new(shards);
            let mut seen = std::collections::HashSet::new();
            for shard in 0..shards {
                for local in 0..64u64 {
                    let cluster = router.to_cluster_session(SessionId::from_raw(local), shard);
                    assert!(seen.insert(cluster.raw()), "cluster ids collided");
                    assert_eq!(router.shard_for_session(cluster), shard);
                    assert_eq!(router.to_local_session(cluster).raw(), local);
                }
            }
        }
    }

    #[test]
    fn one_shard_translation_is_the_identity() {
        let router = ShardRouter::new(1);
        for raw in [0u64, 1, 7, 1 << 40] {
            let id = SessionId::from_raw(raw);
            assert_eq!(router.to_cluster_session(id, 0), id);
            assert_eq!(router.to_local_session(id), id);
        }
    }

    #[test]
    fn request_routing_follows_the_encoded_shard() {
        let router = ShardRouter::new(4);
        let request = Request::FinishDay {
            session: SessionId::from_raw(4 * 5 + 3),
        };
        assert_eq!(router.shard_for_request(&request), 3);
        match router.to_local(request) {
            Request::FinishDay { session } => assert_eq!(session.raw(), 5),
            other => panic!("translation changed the variant: {other:?}"),
        }
    }
}
