//! The in-process cluster: N independent [`AuditService`] shards behind one
//! typed [`Request`]/[`Response`] front door.
//!
//! Each shard owns its own engines, worker pool, counters, and — when the
//! `wal` feature is on — its own WAL directory (`<dir>/shard-<i>`), so a
//! crashed shard recovers from its own bytes while every other shard keeps
//! serving untouched. Because the paper's scheme is per-tenant-independent,
//! per-tenant results are bitwise-identical regardless of the shard count;
//! the registry-wide suites in `sag-scenarios` assert exactly that against
//! the unsharded service.

use crate::router::ShardRouter;
use sag_core::EngineBuilder;
use sag_service::{
    AuditService, Handled, Request, Response, ServiceBuilder, ServiceCounters, ServiceError,
    TenantId,
};
use sag_sim::DayLog;
use std::sync::Arc;

#[cfg(feature = "wal")]
use sag_service::DurabilityOptions;
#[cfg(feature = "wal")]
use std::path::{Path, PathBuf};

use sag_service::CountersSnapshot;

/// The WAL directory a shard logs under: `<dir>/shard-<index>`.
///
/// Exposed so operators and tests can point a single-shard recovery (or a
/// disk-usage probe) at the right subtree without re-deriving the layout.
#[cfg(feature = "wal")]
#[must_use]
pub fn shard_wal_dir(dir: impl AsRef<Path>, shard: usize) -> PathBuf {
    dir.as_ref().join(format!("shard-{shard}"))
}

/// Builder for a [`ClusterService`]: tenant specs plus per-shard knobs.
///
/// Tenants are placed by the [`ShardRouter`]'s consistent hash at
/// [`build`](Self::build) time; each shard gets its own
/// [`ServiceBuilder`] carrying only the tenants it owns, so duplicate
/// registrations are still caught (the same id always hashes to the same
/// shard) and every shard validates independently.
#[derive(Debug)]
pub struct ClusterBuilder {
    router: ShardRouter,
    tenants: Vec<(TenantId, EngineBuilder, Vec<DayLog>)>,
    workers: Option<usize>,
    history_window: Option<usize>,
    dedup_window: Option<usize>,
    with_counters: bool,
    #[cfg(feature = "wal")]
    durability: Option<(PathBuf, DurabilityOptions)>,
}

impl ClusterBuilder {
    /// Start a cluster over `shards` shards (clamped to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> ClusterBuilder {
        ClusterBuilder {
            router: ShardRouter::new(shards),
            tenants: Vec::new(),
            workers: None,
            history_window: None,
            dedup_window: None,
            with_counters: false,
            #[cfg(feature = "wal")]
            durability: None,
        }
    }

    /// The router this cluster will place tenants with.
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Register a tenant with no prior history.
    #[must_use]
    pub fn tenant(self, id: impl Into<TenantId>, engine: EngineBuilder) -> Self {
        self.tenant_with_history(id, engine, Vec::new())
    }

    /// Register a tenant seeded with recorded history days.
    #[must_use]
    pub fn tenant_with_history(
        mut self,
        id: impl Into<TenantId>,
        engine: EngineBuilder,
        history: Vec<DayLog>,
    ) -> Self {
        self.tenants.push((id.into(), engine, history));
        self
    }

    /// Worker-pool size for **each** shard (shards never share a pool).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Rolling history window per tenant (see
    /// [`ServiceBuilder::history_window`]).
    #[must_use]
    pub fn history_window(mut self, days: usize) -> Self {
        self.history_window = Some(days);
        self
    }

    /// Per-tenant dedup window size (see [`ServiceBuilder::dedup_window`]).
    #[must_use]
    pub fn dedup_window(mut self, responses: usize) -> Self {
        self.dedup_window = Some(responses);
        self
    }

    /// Install a fresh, independent [`ServiceCounters`] on every shard.
    /// Aggregate with [`ClusterService::counters_snapshot`] — the quiescent
    /// identity (`requests == days_opened + alerts + days_closed + errors`)
    /// holds on the summed snapshot because it holds on every shard's.
    #[must_use]
    pub fn counters(mut self) -> Self {
        self.with_counters = true;
        self
    }

    /// Log every shard under `<dir>/shard-<i>` with default
    /// [`DurabilityOptions`]. Recovery stays shard-local: one shard's crash
    /// is recovered from its own subtree (see
    /// [`recover_shard`](Self::recover_shard)).
    #[cfg(feature = "wal")]
    #[must_use]
    pub fn durable(self, dir: impl AsRef<Path>) -> Self {
        self.durable_with(dir, DurabilityOptions::default())
    }

    /// [`durable`](Self::durable) with explicit options (applied to every
    /// shard).
    #[cfg(feature = "wal")]
    #[must_use]
    pub fn durable_with(mut self, dir: impl AsRef<Path>, options: DurabilityOptions) -> Self {
        self.durability = Some((dir.as_ref().to_path_buf(), options));
        self
    }

    /// Place every tenant and build one [`ServiceBuilder`] per shard.
    fn into_shard_builders(self) -> (ShardRouter, Vec<ServiceBuilder>) {
        let router = self.router;
        let shards = router.num_shards();
        let mut per_shard: Vec<Vec<(TenantId, EngineBuilder, Vec<DayLog>)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (id, engine, history) in self.tenants {
            let shard = router.shard_for(&id);
            per_shard[shard].push((id, engine, history));
        }
        let builders = per_shard
            .into_iter()
            .enumerate()
            .map(|(shard, tenants)| {
                let mut builder = AuditService::builder();
                if let Some(workers) = self.workers {
                    builder = builder.workers(workers);
                }
                if let Some(days) = self.history_window {
                    builder = builder.history_window(days);
                }
                if let Some(responses) = self.dedup_window {
                    builder = builder.dedup_window(responses);
                }
                if self.with_counters {
                    builder = builder.counters(Arc::new(ServiceCounters::new()));
                }
                #[cfg(feature = "wal")]
                if let Some((dir, options)) = &self.durability {
                    builder = builder.durable_with(shard_wal_dir(dir, shard), *options);
                }
                #[cfg(not(feature = "wal"))]
                let _ = shard;
                for (id, engine, history) in tenants {
                    builder = builder.tenant_with_history(id, engine, history);
                }
                builder
            })
            .collect();
        (router, builders)
    }

    /// Build every shard fresh.
    ///
    /// # Errors
    ///
    /// Any shard's [`ServiceBuilder::build`] failure (duplicate tenant,
    /// invalid engine config, or — when durable — pre-existing WAL state).
    pub fn build(self) -> Result<ClusterService, ServiceError> {
        let (router, builders) = self.into_shard_builders();
        let shards = builders
            .into_iter()
            .map(ServiceBuilder::build)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterService { router, shards })
    }

    /// Recover every shard from its own WAL subtree under the configured
    /// durable directory (requires [`durable`](Self::durable)).
    ///
    /// # Errors
    ///
    /// Any shard's [`ServiceBuilder::recover`] failure.
    #[cfg(feature = "wal")]
    pub fn recover(self) -> Result<ClusterService, ServiceError> {
        let (router, builders) = self.into_shard_builders();
        let shards = builders
            .into_iter()
            .map(ServiceBuilder::recover)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterService { router, shards })
    }

    /// [`recover`](Self::recover) from an explicit directory.
    ///
    /// # Errors
    ///
    /// Any shard's recovery failure.
    #[cfg(feature = "wal")]
    pub fn recover_from(self, dir: impl AsRef<Path>) -> Result<ClusterService, ServiceError> {
        self.durable(dir).recover()
    }

    /// Recover **one** shard from its WAL subtree, leaving every other
    /// shard's state on disk untouched — the shard-local recovery path.
    ///
    /// The builder must describe the same fleet (same tenants, same shard
    /// count, same durable directory) as the cluster that crashed; only the
    /// tenants the router places on `shard` are rebuilt. Swap the result in
    /// with [`ClusterService::replace_shard`].
    ///
    /// # Errors
    ///
    /// The shard's [`ServiceBuilder::recover`] failure, or an
    /// out-of-range `shard`.
    #[cfg(feature = "wal")]
    pub fn recover_shard(self, shard: usize) -> Result<AuditService, ServiceError> {
        let num_shards = self.router.num_shards();
        if shard >= num_shards {
            return Err(ServiceError::Wal(sag_service::WalError::Io {
                file: format!("shard-{shard}"),
                message: format!(
                    "shard index {shard} out of range for a {num_shards}-shard cluster"
                ),
            }));
        }
        let (_, mut builders) = self.into_shard_builders();
        builders.swap_remove(shard).recover()
    }
}

/// N independent [`AuditService`] shards behind one typed command API.
///
/// `handle`/`handle_tagged` route by the [`ShardRouter`], rewrite session
/// ids between the cluster form clients hold and each shard's local form
/// (the bijection documented on [`ShardRouter`]), and otherwise behave
/// exactly like the
/// unsharded service — including the per-tenant dedup window, which lives
/// on the tenant's shard and survives that shard's recovery.
#[derive(Debug)]
pub struct ClusterService {
    router: ShardRouter,
    shards: Vec<AuditService>,
}

impl ClusterService {
    /// Start building a cluster over `shards` shards.
    #[must_use]
    pub fn builder(shards: usize) -> ClusterBuilder {
        ClusterBuilder::new(shards)
    }

    /// The placement/translation router (stateless and `Copy`).
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// How many shards this cluster runs.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's service.
    ///
    /// # Panics
    ///
    /// When `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &AuditService {
        &self.shards[shard]
    }

    /// Read access to every shard, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[AuditService] {
        &self.shards
    }

    /// Swap in a replacement service for `shard` (the tail of the
    /// shard-local recovery flow: recover with
    /// [`ClusterBuilder::recover_shard`], then swap). Returns the displaced
    /// service. No other shard is touched — they keep serving throughout.
    ///
    /// # Panics
    ///
    /// When `shard` is out of range.
    pub fn replace_shard(&mut self, shard: usize, service: AuditService) -> AuditService {
        std::mem::replace(&mut self.shards[shard], service)
    }

    /// Total registered tenants across every shard.
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.shards.iter().map(AuditService::num_tenants).sum()
    }

    /// Every registered tenant, grouped by shard.
    pub fn tenants(&self) -> impl Iterator<Item = &TenantId> {
        self.shards.iter().flat_map(AuditService::tenants)
    }

    /// Open sessions across every shard.
    #[must_use]
    pub fn open_sessions(&self) -> usize {
        self.shards.iter().map(AuditService::open_sessions).sum()
    }

    /// Whether every shard logs through a WAL.
    #[cfg(feature = "wal")]
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.shards.iter().all(AuditService::is_durable)
    }

    /// The shard that owns `tenant`.
    #[must_use]
    pub fn shard_for(&self, tenant: &TenantId) -> usize {
        self.router.shard_for(tenant)
    }

    /// Sum every shard's counters into one cluster-wide snapshot (see
    /// [`CountersSnapshot::merged`]). `None` when no shard has counters
    /// installed; shards without counters contribute zeros otherwise.
    #[must_use]
    pub fn counters_snapshot(&self) -> Option<CountersSnapshot> {
        let mut merged: Option<CountersSnapshot> = None;
        for shard in &self.shards {
            if let Some(counters) = shard.counters() {
                let snapshot = counters.snapshot();
                merged = Some(match merged {
                    Some(sum) => sum.merged(&snapshot),
                    None => snapshot,
                });
            }
        }
        merged
    }

    /// Serve one command, routed to the owning shard with session ids
    /// translated both ways.
    ///
    /// # Errors
    ///
    /// The owning shard's [`ServiceError`], with any session id rewritten
    /// back to cluster form.
    pub fn handle(&mut self, request: Request) -> Result<Response, ServiceError> {
        let shard = self.router.shard_for_request(&request);
        let local = self.router.to_local(request);
        self.shards[shard]
            .handle(local)
            .map(|response| self.router.to_cluster(response, shard))
            .map_err(|error| self.router.to_cluster_error(error, shard))
    }

    /// Serve one command under the idempotency contract (see
    /// [`AuditService::handle_tagged`]). The dedup window is the owning
    /// shard's: redeliveries route to the same shard by construction, so
    /// exactly-once holds per shard and therefore cluster-wide.
    pub fn handle_tagged(
        &mut self,
        tenant: &TenantId,
        request_id: u64,
        request: Request,
    ) -> Handled {
        let shard = self.router.shard_for_request(&request);
        let local = self.router.to_local(request);
        match self.shards[shard].handle_tagged(tenant, request_id, local) {
            Handled::Applied(result) => Handled::Applied(
                result
                    .map(|response| self.router.to_cluster(response, shard))
                    .map_err(|error| self.router.to_cluster_error(error, shard)),
            ),
            Handled::Replayed(response) => {
                Handled::Replayed(self.router.to_cluster(response, shard))
            }
            stale @ Handled::Stale { .. } => stale,
        }
    }

    /// Tear the cluster apart into its router and shard services, in shard
    /// order — how the network front door takes ownership to give every
    /// shard its own service thread.
    #[must_use]
    pub fn into_shards(self) -> (ShardRouter, Vec<AuditService>) {
        (self.router, self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_service::{Response, SessionId};

    fn two_tenant_cluster(shards: usize) -> ClusterService {
        ClusterService::builder(shards)
            .workers(0)
            .counters()
            .tenant("alpha", EngineBuilder::paper_single_type())
            .tenant("beta", EngineBuilder::paper_multi_type())
            .build()
            .expect("cluster builds")
    }

    #[test]
    fn tenants_land_on_their_hashed_shard() {
        let cluster = two_tenant_cluster(4);
        assert_eq!(cluster.num_tenants(), 2);
        for tenant in [TenantId::from("alpha"), TenantId::from("beta")] {
            let shard = cluster.shard_for(&tenant);
            assert!(
                cluster.shard(shard).tenants().any(|t| *t == tenant),
                "{tenant} not on its hashed shard {shard}"
            );
        }
    }

    #[test]
    fn duplicate_tenants_are_rejected_at_build() {
        let err = ClusterService::builder(4)
            .workers(0)
            .tenant("dup", EngineBuilder::paper_single_type())
            .tenant("dup", EngineBuilder::paper_single_type())
            .build()
            .unwrap_err();
        assert!(matches!(err, ServiceError::DuplicateTenant(_)));
    }

    #[test]
    fn cluster_session_ids_encode_their_shard_and_route_back() {
        let mut cluster = two_tenant_cluster(4);
        let alpha = TenantId::from("alpha");
        let shard = cluster.shard_for(&alpha);
        let opened = cluster
            .handle(Request::OpenDay {
                tenant: alpha.clone(),
                budget: None,
                day: Some(0),
            })
            .expect("day opens");
        let session = match opened {
            Response::DayOpened { session, tenant } => {
                assert_eq!(tenant, alpha);
                session
            }
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(cluster.router().shard_for_session(session), shard);
        assert_eq!(cluster.open_sessions(), 1);
        match cluster
            .handle(Request::FinishDay { session })
            .expect("day closes")
        {
            Response::DayClosed {
                session: closed, ..
            } => assert_eq!(closed, session),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(cluster.open_sessions(), 0);
    }

    #[test]
    fn unknown_cluster_session_errors_echo_the_cluster_id() {
        let mut cluster = two_tenant_cluster(4);
        let bogus = SessionId::from_raw(4 * 9 + 2);
        let err = cluster
            .handle(Request::FinishDay { session: bogus })
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownSession(bogus));
    }

    #[test]
    fn tagged_duplicates_replay_from_the_owning_shard() {
        let mut cluster = two_tenant_cluster(2);
        let alpha = TenantId::from("alpha");
        let open = Request::OpenDay {
            tenant: alpha.clone(),
            budget: None,
            day: Some(0),
        };
        let first = match cluster.handle_tagged(&alpha, 1, open.clone()) {
            Handled::Applied(Ok(response)) => response,
            other => panic!("first delivery should apply: {other:?}"),
        };
        match cluster.handle_tagged(&alpha, 1, open) {
            Handled::Replayed(replayed) => assert_eq!(replayed, first),
            other => panic!("duplicate should replay: {other:?}"),
        }
        assert_eq!(cluster.open_sessions(), 1);
    }

    #[test]
    fn counters_aggregate_and_hold_the_quiescent_identity() {
        let mut cluster = two_tenant_cluster(4);
        for tenant in [TenantId::from("alpha"), TenantId::from("beta")] {
            let session = match cluster
                .handle(Request::OpenDay {
                    tenant: tenant.clone(),
                    budget: None,
                    day: Some(0),
                })
                .expect("day opens")
            {
                Response::DayOpened { session, .. } => session,
                other => panic!("unexpected response {other:?}"),
            };
            cluster
                .handle(Request::FinishDay { session })
                .expect("day closes");
        }
        // One deliberate rejection so `errors` participates too.
        let _ = cluster
            .handle(Request::FinishDay {
                session: SessionId::from_raw(999),
            })
            .unwrap_err();
        let snapshot = cluster.counters_snapshot().expect("counters installed");
        assert_eq!(snapshot.requests, 5);
        assert_eq!(snapshot.days_opened, 2);
        assert_eq!(snapshot.days_closed, 2);
        assert_eq!(snapshot.errors, 1);
        assert!(
            snapshot.quiescent_identity_holds(),
            "cluster-wide identity violated: {snapshot:?}"
        );
    }
}
