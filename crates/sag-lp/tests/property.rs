//! Property-based tests for the simplex solver.
//!
//! Strategy: generate small random LPs of a shape similar to the SAG programs
//! (bounded nonnegative variables, `≤`/`≥`/`=` constraints with bounded
//! coefficients) and check solver invariants that hold regardless of the
//! particular instance:
//!
//! 1. any reported optimum is primal feasible;
//! 2. the reported objective matches the objective evaluated at the reported
//!    point;
//! 3. the optimum is at least as good as a brute-force sample of random
//!    feasible points;
//! 4. adding a redundant constraint never changes the optimal objective;
//! 5. scaling the objective scales the optimum.

use proptest::prelude::*;
use sag_lp::{
    LpError, LpProblem, LpSolution, Objective, ReferenceWorkspace, Relation, SimplexWorkspace,
    VarId,
};

/// Assert that two solutions are identical down to the last bit: objective,
/// values, duals, basis and the full pivot statistics. This is the hard bar
/// the blocked kernel refactor is held to — not "numerically close", but the
/// same floating-point trajectory.
fn assert_bitwise_equal(new: &LpSolution, old: &LpSolution, context: &str) {
    assert_eq!(
        new.objective().to_bits(),
        old.objective().to_bits(),
        "{context}: objective bits differ ({} vs {})",
        new.objective(),
        old.objective()
    );
    assert_eq!(new.values().len(), old.values().len(), "{context}: values");
    for (j, (a, b)) in new.values().iter().zip(old.values()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{context}: value {j} ({a} vs {b})"
        );
    }
    assert_eq!(new.duals().len(), old.duals().len(), "{context}: duals");
    for (i, (a, b)) in new.duals().iter().zip(old.duals()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: dual {i} ({a} vs {b})");
    }
    assert_eq!(new.basis(), old.basis(), "{context}: basis");
    assert_eq!(new.stats(), old.stats(), "{context}: stats");
}

/// A compact, generatable description of a random LP instance.
#[derive(Debug, Clone)]
struct RandomLp {
    maximize: bool,
    // per-variable: (upper_bound, objective_coeff)
    vars: Vec<(f64, f64)>,
    // per-constraint: (coeffs aligned with vars, relation index 0/1, rhs)
    cons: Vec<(Vec<f64>, u8, f64)>,
}

impl RandomLp {
    fn build(&self) -> (LpProblem, Vec<VarId>) {
        let mut lp = LpProblem::new(if self.maximize {
            Objective::Maximize
        } else {
            Objective::Minimize
        });
        let ids: Vec<VarId> = self
            .vars
            .iter()
            .enumerate()
            .map(|(j, &(ub, _))| lp.add_var(format!("x{j}"), 0.0, ub))
            .collect();
        for (j, &(_, c)) in self.vars.iter().enumerate() {
            lp.set_objective(ids[j], c);
        }
        for (coeffs, rel, rhs) in &self.cons {
            let terms: Vec<(VarId, f64)> =
                ids.iter().copied().zip(coeffs.iter().copied()).collect();
            let relation = if *rel == 0 {
                Relation::Le
            } else {
                Relation::Ge
            };
            lp.add_constraint(&terms, relation, *rhs);
        }
        (lp, ids)
    }
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    let nvars = 1usize..5;
    let ncons = 0usize..4;
    (nvars, ncons, any::<bool>()).prop_flat_map(|(nv, nc, maximize)| {
        let vars = proptest::collection::vec((0.5f64..20.0, -10.0f64..10.0), nv);
        let cons = proptest::collection::vec(
            (
                proptest::collection::vec(-3.0f64..3.0, nv),
                0u8..2,
                0.0f64..15.0,
            ),
            nc,
        );
        (vars, cons).prop_map(move |(vars, cons)| RandomLp {
            maximize,
            vars,
            cons,
        })
    })
}

/// Deterministic pseudo-random feasible-point sampler: grid corners plus a few
/// interior points, filtered by feasibility.
fn sample_feasible_points(lp: &LpProblem, vars: &[VarId]) -> Vec<Vec<f64>> {
    let mut points = Vec::new();
    let n = vars.len();
    // Corners of the box (bounded to 2^n for small n) and midpoints.
    let corners = 1usize << n.min(4);
    for mask in 0..corners {
        let mut p = vec![0.0; n];
        for (j, value) in p.iter_mut().enumerate() {
            let (lo, hi) = lp.bounds(vars[j]);
            *value = if mask >> j & 1 == 1 {
                hi.min(lo + 1e6)
            } else {
                lo
            };
        }
        points.push(p);
    }
    let mid: Vec<f64> = vars
        .iter()
        .map(|&v| {
            let (lo, hi) = lp.bounds(v);
            lo + 0.5 * (hi.min(lo + 1e6) - lo)
        })
        .collect();
    points.push(mid);
    points.push(vec![0.0; n]);
    points.retain(|p| lp.is_feasible(p, 1e-9));
    points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimum_is_feasible_and_consistent(instance in random_lp_strategy()) {
        let (lp, _ids) = instance.build();
        match lp.solve() {
            Ok(sol) => {
                prop_assert!(lp.is_feasible(sol.values(), 1e-6),
                    "reported optimum is not feasible: {:?}", sol.values());
                let recomputed = lp.objective_at(sol.values());
                prop_assert!((recomputed - sol.objective()).abs() < 1e-6,
                    "objective mismatch: reported {}, recomputed {}", sol.objective(), recomputed);
            }
            Err(LpError::Infeasible) => {
                // The all-lower-bounds point must then violate some constraint
                // (sanity: the zero point is in the box, so infeasibility must
                // come from the linear constraints).
                let zeros = vec![0.0; lp.num_vars()];
                prop_assert!(!lp.is_feasible(&zeros, 1e-9)
                    || lp.num_constraints() > 0);
            }
            Err(LpError::Unbounded) => {
                // Unboundedness requires at least one variable with an
                // infinite bound; our generator only produces finite bounds,
                // so this must never happen.
                prop_assert!(false, "finite-box LP reported unbounded");
            }
            Err(other) => prop_assert!(false, "unexpected solver error: {other}"),
        }
    }

    #[test]
    fn optimum_dominates_sampled_feasible_points(instance in random_lp_strategy()) {
        let (lp, ids) = instance.build();
        if let Ok(sol) = lp.solve() {
            let maximize = instance.maximize;
            for p in sample_feasible_points(&lp, &ids) {
                let val = lp.objective_at(&p);
                if maximize {
                    prop_assert!(sol.objective() >= val - 1e-6,
                        "sampled point {:?} with objective {} beats reported optimum {}",
                        p, val, sol.objective());
                } else {
                    prop_assert!(sol.objective() <= val + 1e-6,
                        "sampled point {:?} with objective {} beats reported optimum {}",
                        p, val, sol.objective());
                }
            }
        }
    }

    #[test]
    fn redundant_constraint_preserves_optimum(instance in random_lp_strategy()) {
        let (lp, ids) = instance.build();
        if let Ok(sol) = lp.solve() {
            let mut relaxed = lp.clone();
            // sum of x_j <= sum of upper bounds is always redundant.
            let total_ub: f64 = ids.iter().map(|&v| lp.bounds(v).1).sum();
            let terms: Vec<(VarId, f64)> = ids.iter().map(|&v| (v, 1.0)).collect();
            relaxed.add_constraint(&terms, Relation::Le, total_ub + 1.0);
            let sol2 = relaxed.solve().expect("redundant constraint made LP unsolvable");
            prop_assert!((sol.objective() - sol2.objective()).abs() < 1e-6);
        }
    }

    /// Warm-started solves track cold solves exactly along randomized
    /// perturbation sequences — the access pattern of the online SSE, where
    /// consecutive alerts shrink the budget and drift the estimates. Each
    /// step perturbs the previous instance's bounds and right-hand sides and
    /// compares `solve_from_basis` (seeded with the previous optimal basis)
    /// against a cold `solve` of the identical instance.
    #[test]
    fn warm_start_tracks_cold_solves_along_perturbation_sequences(
        instance in random_lp_strategy(),
        budget_factors in proptest::collection::vec(0.55f64..1.0, 12),
        bound_factors in proptest::collection::vec(0.8f64..1.05, 12),
    ) {
        let (base, ids) = instance.build();
        if base.solve().is_err() {
            // Start from a solvable base instance; infeasible families are
            // covered by the other properties. (The vendored proptest! macro
            // runs cases in a loop, so `continue` skips this case.)
            continue;
        }

        let mut ws = SimplexWorkspace::new();
        let mut basis: Vec<usize> = Vec::new();
        let mut lp = base.clone();
        for (step, (bf, vf)) in budget_factors.iter().zip(&bound_factors).enumerate() {
            // Budget-like drift: scale every rhs down; estimate-like drift:
            // scale every upper bound.
            for c in 0..lp.num_constraints() {
                lp.set_constraint_rhs(c, base.constraints()[c].rhs * bf);
            }
            for &v in &ids {
                let (lo, hi) = base.bounds(v);
                lp.set_bounds(v, lo, hi * vf);
            }

            let cold = lp.solve();
            let warm = if basis.is_empty() {
                lp.solve_with(&mut ws)
            } else {
                lp.solve_from_basis(&mut ws, &basis)
            };
            match (cold, warm) {
                (Ok(cold), Ok(warm)) => {
                    prop_assert!(
                        (cold.objective() - warm.objective()).abs()
                            < 1e-9 * (1.0 + cold.objective().abs()),
                        "step {step}: warm objective {} diverged from cold {}",
                        warm.objective(),
                        cold.objective()
                    );
                    prop_assert!(lp.is_feasible(warm.values(), 1e-6));
                    basis.clear();
                    basis.extend_from_slice(warm.basis());
                }
                (Err(cold_err), Err(warm_err)) => {
                    // Warm solves fall back to the cold path on unusable
                    // bases, so the reported failure must match.
                    prop_assert_eq!(cold_err, warm_err);
                    basis.clear();
                }
                (cold, warm) => {
                    prop_assert!(
                        false,
                        "step {step}: cold {:?} but warm {:?}",
                        cold.map(|s| s.objective()),
                        warm.map(|s| s.objective())
                    );
                }
            }
        }
    }

    /// The Lagrangian bound priced from a solve's duals is tight on the same
    /// data and stays a valid bound when re-priced against perturbed data —
    /// the certificate the SSE solver's incremental pruning relies on.
    #[test]
    fn lagrangian_bound_is_tight_at_home_and_valid_under_drift(
        instance in random_lp_strategy(),
        rhs_factor in 0.6f64..1.3,
        bound_factor in 0.7f64..1.2,
    ) {
        let (base, ids) = instance.build();
        let Ok(sol) = base.solve() else { continue };
        let mut scratch = Vec::new();

        // Tight at home (strong duality).
        let home = base.lagrangian_bound(sol.duals(), &mut scratch);
        let tol = 1e-6 * (1.0 + sol.objective().abs());
        if instance.maximize {
            prop_assert!(home >= sol.objective() - tol);
            prop_assert!(home <= sol.objective() + tol,
                "home bound {} far above optimum {}", home, sol.objective());
        } else {
            prop_assert!(home <= sol.objective() + tol);
            prop_assert!(home >= sol.objective() - tol,
                "home bound {} far below optimum {}", home, sol.objective());
        }

        // Valid (one-sided) after drifting every rhs and upper bound.
        let mut drifted = base.clone();
        for c in 0..drifted.num_constraints() {
            drifted.set_constraint_rhs(c, base.constraints()[c].rhs * rhs_factor);
        }
        for &v in &ids {
            let (lo, hi) = base.bounds(v);
            drifted.set_bounds(v, lo, hi * bound_factor);
        }
        if let Ok(drifted_sol) = drifted.solve() {
            let bound = drifted.lagrangian_bound(sol.duals(), &mut scratch);
            let tol = 1e-6 * (1.0 + drifted_sol.objective().abs());
            if instance.maximize {
                prop_assert!(bound >= drifted_sol.objective() - tol,
                    "re-priced bound {} below drifted optimum {}",
                    bound, drifted_sol.objective());
            } else {
                prop_assert!(bound <= drifted_sol.objective() + tol,
                    "re-priced bound {} above drifted optimum {}",
                    bound, drifted_sol.objective());
            }
        }
    }

    /// The blocked kernel reproduces the frozen pre-refactor kernel
    /// bit-for-bit on randomized instances — cold solves, error outcomes,
    /// and warm restarts from the previous optimal basis alike.
    #[test]
    fn new_kernel_is_bitwise_identical_to_the_frozen_reference(
        instance in random_lp_strategy(),
        rhs_factor in 0.6f64..1.3,
    ) {
        let (lp, _ids) = instance.build();
        let mut ws = SimplexWorkspace::new();
        let mut reference = ReferenceWorkspace::new();
        let (new, old) = (lp.solve_with(&mut ws), reference.solve(&lp));
        match (new, old) {
            (Ok(new), Ok(old)) => {
                assert_bitwise_equal(&new, &old, "cold solve");
                // Warm restart from the shared optimal basis on a drifted
                // instance must also track the reference exactly.
                let mut drifted = lp.clone();
                for c in 0..drifted.num_constraints() {
                    drifted.set_constraint_rhs(c, lp.constraints()[c].rhs * rhs_factor);
                }
                let warm_new = drifted.solve_from_basis(&mut ws, new.basis());
                let warm_old = reference.solve_from_basis(&drifted, old.basis());
                match (warm_new, warm_old) {
                    (Ok(wn), Ok(wo)) => assert_bitwise_equal(&wn, &wo, "warm solve"),
                    (Err(en), Err(eo)) => prop_assert_eq!(en, eo),
                    (wn, wo) => prop_assert!(
                        false,
                        "warm solve diverged: new {:?} vs reference {:?}",
                        wn.map(|s| s.objective()),
                        wo.map(|s| s.objective())
                    ),
                }
            }
            (Err(new_err), Err(old_err)) => prop_assert_eq!(new_err, old_err),
            (new, old) => prop_assert!(
                false,
                "cold solve diverged: new {:?} vs reference {:?}",
                new.map(|s| s.objective()),
                old.map(|s| s.objective())
            ),
        }
    }

    #[test]
    fn objective_scaling_scales_optimum(instance in random_lp_strategy(), scale in 0.1f64..10.0) {
        let (lp, ids) = instance.build();
        if let Ok(sol) = lp.solve() {
            let mut scaled = lp.clone();
            for &v in &ids {
                scaled.set_objective(v, lp.objective_coeff(v) * scale);
            }
            let sol2 = scaled.solve().expect("scaled LP unsolvable");
            prop_assert!((sol2.objective() - sol.objective() * scale).abs() < 1e-5 * (1.0 + sol.objective().abs()),
                "scaling by {} changed optimum {} -> {}", scale, sol.objective(), sol2.objective());
        }
    }
}

/// Golden vectors: fixed instances whose exact solution components are
/// representable f64 literals. Both kernels must reproduce every component
/// bit-for-bit — a drift in either one (or in the standard-form rewrite they
/// share) fails loudly with the offending component named.
#[test]
fn golden_vectors_pin_both_kernels_bitwise() {
    struct Golden {
        name: &'static str,
        lp: LpProblem,
        objective: f64,
        values: Vec<f64>,
        duals: Vec<f64>,
    }

    let mut goldens = Vec::new();

    // Dantzig's textbook example: all components exactly representable.
    let mut lp = LpProblem::new(Objective::Maximize);
    let x = lp.add_var("x", 0.0, f64::INFINITY);
    let y = lp.add_var("y", 0.0, f64::INFINITY);
    lp.set_objective(x, 3.0);
    lp.set_objective(y, 5.0);
    lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
    lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
    lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
    goldens.push(Golden {
        name: "dantzig_textbook",
        lp,
        objective: 36.0,
        values: vec![2.0, 6.0],
        // The slack row's dual is a negated 0.0 (the maximize sign flip),
        // and a bitwise golden must spell that out.
        duals: vec![-0.0, 1.5, 1.0],
    });

    // Minimization with a flipped (>=) row and shifted lower bounds.
    let mut lp = LpProblem::new(Objective::Minimize);
    let x = lp.add_var("x", 2.0, f64::INFINITY);
    let y = lp.add_var("y", 3.0, f64::INFINITY);
    lp.set_objective(x, 2.0);
    lp.set_objective(y, 3.0);
    lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
    goldens.push(Golden {
        name: "min_with_ge_and_shifts",
        lp,
        objective: 23.0,
        values: vec![7.0, 3.0],
        duals: vec![2.0],
    });

    // Equality-constrained program with an upper-bounded variable.
    let mut lp = LpProblem::new(Objective::Maximize);
    let x = lp.add_var("x", 0.0, 3.0);
    let y = lp.add_var("y", 0.0, f64::INFINITY);
    lp.set_objective(x, 1.0);
    lp.set_objective(y, 1.0);
    lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
    goldens.push(Golden {
        name: "equality_with_box",
        lp,
        objective: 3.5,
        values: vec![3.0, 0.5],
        duals: vec![0.5],
    });

    let mut ws = SimplexWorkspace::new();
    let mut reference = ReferenceWorkspace::new();
    for golden in &goldens {
        let new = golden
            .lp
            .solve_with(&mut ws)
            .unwrap_or_else(|e| panic!("{}: new kernel failed: {e}", golden.name));
        let old = reference
            .solve(&golden.lp)
            .unwrap_or_else(|e| panic!("{}: reference kernel failed: {e}", golden.name));
        assert_bitwise_equal(&new, &old, golden.name);
        assert_eq!(
            new.objective().to_bits(),
            golden.objective.to_bits(),
            "{}: objective {} != golden {}",
            golden.name,
            new.objective(),
            golden.objective
        );
        for (j, (got, want)) in new.values().iter().zip(&golden.values).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{}: value {j} is {got}, golden says {want}",
                golden.name
            );
        }
        for (i, (got, want)) in new.duals().iter().zip(&golden.duals).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{}: dual {i} is {got}, golden says {want}",
                golden.name
            );
        }
    }
}
