//! Problem-builder API: variables, bounds, constraints and the objective.

use crate::simplex::SimplexWorkspace;
use crate::{LpError, LpSolution, Result};

/// Optimization direction of the objective function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation between the linear expression and the right-hand side of a
/// constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Opaque handle to a decision variable of an [`LpProblem`].
///
/// Handles are only meaningful for the problem that created them; using a
/// handle from another problem is either caught as an out-of-range error or
/// silently refers to a different variable, so don't do that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of this variable in the problem's variable list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A single variable definition: name, bounds and objective coefficient.
#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

/// A linear constraint `sum_j coeff_j * x_j  (<=|>=|==)  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse list of `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
    /// Relation between the expression and `rhs`.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Evaluate the left-hand side of the constraint at the given point.
    #[must_use]
    pub fn lhs_at(&self, x: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|&(v, c)| c * x.get(v.0).copied().unwrap_or(0.0))
            .sum()
    }

    /// Whether the point satisfies the constraint within tolerance `tol`.
    #[must_use]
    pub fn satisfied_at(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs_at(x);
        match self.relation {
            Relation::Le => lhs <= self.rhs + tol,
            Relation::Ge => lhs >= self.rhs - tol,
            Relation::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A linear program under construction.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) objective: Objective,
    pub(crate) variables: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Create an empty problem with the given optimization direction.
    #[must_use]
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            variables: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Add a decision variable with bounds `lower <= x <= upper` and a zero
    /// objective coefficient. `upper` may be `f64::INFINITY`; `lower` must be
    /// finite (the SAG formulations never need free-below variables, and a
    /// finite lower bound keeps the standard-form conversion simple).
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            lower,
            upper,
            objective: 0.0,
        });
        id
    }

    /// Shorthand for a variable bounded to `[0, 1]` (a probability).
    pub fn add_prob_var(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, 0.0, 1.0)
    }

    /// Set the objective coefficient of `var`.
    pub fn set_objective(&mut self, var: VarId, coeff: f64) {
        self.variables[var.0].objective = coeff;
    }

    /// Update the bounds of an existing variable. Used by hot paths that
    /// cache a problem and rewrite its numbers in place instead of
    /// rebuilding it (the structure — variables, constraints, relations —
    /// must stay fixed for basis warm-starting to apply).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this problem.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        let v = &mut self.variables[var.0];
        v.lower = lower;
        v.upper = upper;
    }

    /// Add a constraint from sparse `(variable, coefficient)` terms.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], relation: Relation, rhs: f64) {
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            relation,
            rhs,
        });
    }

    /// Overwrite the coefficient of the `term`-th term of constraint
    /// `constraint` (in-place counterpart of rebuilding the constraint).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_constraint_term(&mut self, constraint: usize, term: usize, coeff: f64) {
        self.constraints[constraint].terms[term].1 = coeff;
    }

    /// Overwrite the right-hand side of constraint `constraint`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set_constraint_rhs(&mut self, constraint: usize, rhs: f64) {
        self.constraints[constraint].rhs = rhs;
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints (excluding variable bounds).
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.variables[var.0].name
    }

    /// Optimization direction.
    #[must_use]
    pub fn objective_direction(&self) -> Objective {
        self.objective
    }

    /// Objective coefficient of a variable.
    #[must_use]
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.variables[var.0].objective
    }

    /// Bounds `(lower, upper)` of a variable.
    #[must_use]
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.variables[var.0];
        (v.lower, v.upper)
    }

    /// Constraints of the problem.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluate the objective function at a point expressed over the original
    /// variables.
    #[must_use]
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.variables
            .iter()
            .enumerate()
            .map(|(j, v)| v.objective * x.get(j).copied().unwrap_or(0.0))
            .sum()
    }

    /// Whether a point is feasible (bounds and constraints) within `tol`.
    #[must_use]
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.variables.len() {
            return false;
        }
        for (j, v) in self.variables.iter().enumerate() {
            if x[j] < v.lower - tol || x[j] > v.upper + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.satisfied_at(x, tol))
    }

    /// Validate the problem definition, returning a description of the first
    /// defect found.
    pub fn validate(&self) -> Result<()> {
        for (j, v) in self.variables.iter().enumerate() {
            if !v.lower.is_finite() {
                return Err(LpError::Malformed(format!(
                    "variable {} (`{}`) must have a finite lower bound",
                    j, v.name
                )));
            }
            if v.upper.is_nan() {
                return Err(LpError::Malformed(format!(
                    "variable {} (`{}`) has a NaN upper bound",
                    j, v.name
                )));
            }
            if v.upper < v.lower {
                return Err(LpError::Malformed(format!(
                    "variable {} (`{}`) has upper bound {} below lower bound {}",
                    j, v.name, v.upper, v.lower
                )));
            }
            if !v.objective.is_finite() {
                return Err(LpError::Malformed(format!(
                    "variable {} (`{}`) has a non-finite objective coefficient",
                    j, v.name
                )));
            }
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(LpError::Malformed(format!(
                    "constraint {i} has a non-finite right-hand side"
                )));
            }
            for &(v, coeff) in &c.terms {
                if v.0 >= self.variables.len() {
                    return Err(LpError::Malformed(format!(
                        "constraint {i} references unknown variable index {}",
                        v.0
                    )));
                }
                if !coeff.is_finite() {
                    return Err(LpError::Malformed(format!(
                        "constraint {i} has a non-finite coefficient for variable {}",
                        v.0
                    )));
                }
            }
        }
        Ok(())
    }

    /// Price a certified objective bound from `duals` against the problem's
    /// *current* data, without solving: for a maximization this returns an
    /// **upper** bound on the optimal objective, for a minimization a
    /// **lower** bound. `scratch` is caller-provided so hot paths pay no
    /// allocation; its contents are overwritten.
    ///
    /// This is the Lagrangian-relaxation bound: for multipliers `y` with the
    /// sign convention of [`crate::LpSolution::duals`] (enforced here by
    /// clamping wrong-signed entries to zero, so *any* `y` — e.g. the duals
    /// of a structurally identical problem with slightly different numbers —
    /// yields a valid bound),
    ///
    /// ```text
    /// opt ≤ y·b + Σ_j max_{x_j ∈ [l_j, u_j]} (c_j − y·A_j) x_j        (max)
    /// ```
    ///
    /// and symmetrically with `min` for minimizations. When `y` is the
    /// optimal dual of the same data the bound is tight (strong duality);
    /// re-priced against drifted coefficients it stays valid but loosens
    /// with the drift — exactly the property incremental solvers exploit to
    /// skip re-solves that provably cannot beat an incumbent. A variable
    /// whose relaxed profit is positive with an infinite upper bound makes
    /// the bound `+∞` (maximization), i.e. "no information".
    ///
    /// # Panics
    ///
    /// Panics if `duals.len()` differs from [`Self::num_constraints`].
    #[must_use]
    pub fn lagrangian_bound(&self, duals: &[f64], scratch: &mut Vec<f64>) -> f64 {
        assert_eq!(
            duals.len(),
            self.constraints.len(),
            "one dual per constraint"
        );
        let maximize = self.objective == Objective::Maximize;
        // Relaxed profit per variable: c_j − Σ_i y_i a_ij, built by
        // scattering the (sparse) constraint terms over a dense scratch.
        scratch.clear();
        scratch.extend(self.variables.iter().map(|v| v.objective));
        let mut bound = 0.0;
        for (cons, &raw) in self.constraints.iter().zip(duals) {
            // Clamp the multiplier onto its valid half-line so numerical
            // noise (or drifted duals) can never invalidate the bound.
            let y = match (cons.relation, maximize) {
                (Relation::Eq, _) => raw,
                (Relation::Le, true) | (Relation::Ge, false) => raw.max(0.0),
                (Relation::Ge, true) | (Relation::Le, false) => raw.min(0.0),
            };
            if y == 0.0 {
                continue;
            }
            bound += y * cons.rhs;
            for &(var, coeff) in &cons.terms {
                scratch[var.0] -= y * coeff;
            }
        }
        for (v, &profit) in self.variables.iter().zip(scratch.iter()) {
            // The inner box optimum: each variable independently sits at
            // whichever bound favours the objective direction.
            let pick = if maximize {
                if profit > 0.0 {
                    v.upper
                } else {
                    v.lower
                }
            } else if profit < 0.0 {
                v.upper
            } else {
                v.lower
            };
            if profit != 0.0 {
                bound += profit * pick;
            }
        }
        bound
    }

    /// Solve the program with the two-phase simplex method.
    ///
    /// Allocates a fresh [`SimplexWorkspace`] per call; hot paths that solve
    /// many programs should hold a workspace and use
    /// [`solve_with`](Self::solve_with) or
    /// [`solve_from_basis`](Self::solve_from_basis) instead.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`], [`LpError::Unbounded`],
    /// [`LpError::Malformed`] or [`LpError::IterationLimit`].
    pub fn solve(&self) -> Result<LpSolution> {
        self.solve_with(&mut SimplexWorkspace::new())
    }

    /// Solve cold (two phases), reusing the buffers of `workspace`. After
    /// the workspace has grown to the steady-state problem size, the only
    /// per-solve allocations are the returned solution's buffers — and even
    /// those are reused if previous solutions are handed back through
    /// [`SimplexWorkspace::recycle`]. The workspace's
    /// [`pricing`](SimplexWorkspace::set_pricing) rule carries over: Bland
    /// (default, bitwise-reproducible) or Dantzig (fewer pivots on large
    /// programs). The pivot budget behind [`LpError::IterationLimit`] scales
    /// with the program's dimensions, so large candidate LPs cannot
    /// spuriously trip the anti-cycling cap.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_with(&self, workspace: &mut SimplexWorkspace) -> Result<LpSolution> {
        self.validate()?;
        crate::simplex::solve(self, workspace)
    }

    /// Solve warm: seed phase 2 from `basis` — the row-ordered optimal basis
    /// of a previous solve of a *structurally identical* program (same
    /// variables, bounds finiteness, and constraint relations; coefficients
    /// and right-hand sides may differ). When the basis is unusable for the
    /// new data (singular or infeasible), the solver transparently falls
    /// back to the cold two-phase path, so the result is always the true
    /// optimum; check [`SolveStats::warm_started`](crate::SolveStats) to see
    /// which path ran.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_from_basis(
        &self,
        workspace: &mut SimplexWorkspace,
        basis: &[usize],
    ) -> Result<LpSolution> {
        self.validate()?;
        crate::simplex::solve_warm(self, workspace, basis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_sizes_names_and_bounds() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 5.0);
        let y = lp.add_prob_var("y");
        lp.set_objective(x, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 3.0);

        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.bounds(y), (0.0, 1.0));
        assert_eq!(lp.objective_coeff(x), 2.0);
        assert_eq!(lp.objective_coeff(y), 0.0);
        assert_eq!(lp.objective_direction(), Objective::Maximize);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
    }

    #[test]
    fn in_place_mutation_matches_a_rebuilt_problem() {
        // A problem edited in place must solve identically to one built
        // fresh with the same numbers.
        let mut cached = LpProblem::new(Objective::Maximize);
        let x = cached.add_var("x", 0.0, 10.0);
        let y = cached.add_var("y", 0.0, 10.0);
        cached.set_objective(x, 1.0);
        cached.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 5.0);

        cached.set_bounds(x, 0.0, 3.0);
        cached.set_objective(y, 2.0);
        cached.set_constraint_term(0, 1, 0.5);
        cached.set_constraint_rhs(0, 4.0);

        let mut fresh = LpProblem::new(Objective::Maximize);
        let fx = fresh.add_var("x", 0.0, 3.0);
        let fy = fresh.add_var("y", 0.0, 10.0);
        fresh.set_objective(fx, 1.0);
        fresh.set_objective(fy, 2.0);
        fresh.add_constraint(&[(fx, 1.0), (fy, 0.5)], Relation::Le, 4.0);

        let a = cached.solve().unwrap();
        let b = fresh.solve().unwrap();
        assert!((a.objective() - b.objective()).abs() < 1e-9);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn objective_and_feasibility_evaluation() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 10.0);
        let y = lp.add_var("y", 0.0, 10.0);
        lp.set_objective(x, 1.0);
        lp.set_objective(y, 4.0);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Le, 8.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);

        assert!((lp.objective_at(&[2.0, 3.0]) - 14.0).abs() < 1e-12);
        assert!(lp.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 0.0], 1e-9)); // violates x >= 1
        assert!(!lp.is_feasible(&[9.0, 0.0], 1e-9)); // violates x + 2y <= 8
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // wrong dimension
    }

    #[test]
    fn constraint_satisfaction_by_relation() {
        let c_le = Constraint {
            terms: vec![(VarId(0), 1.0)],
            relation: Relation::Le,
            rhs: 1.0,
        };
        let c_ge = Constraint {
            terms: vec![(VarId(0), 1.0)],
            relation: Relation::Ge,
            rhs: 1.0,
        };
        let c_eq = Constraint {
            terms: vec![(VarId(0), 1.0)],
            relation: Relation::Eq,
            rhs: 1.0,
        };
        assert!(c_le.satisfied_at(&[0.5], 1e-9));
        assert!(!c_le.satisfied_at(&[1.5], 1e-9));
        assert!(c_ge.satisfied_at(&[1.5], 1e-9));
        assert!(!c_ge.satisfied_at(&[0.5], 1e-9));
        assert!(c_eq.satisfied_at(&[1.0 + 1e-12], 1e-9));
        assert!(!c_eq.satisfied_at(&[1.1], 1e-9));
    }

    #[test]
    fn validate_rejects_bad_definitions() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", f64::NEG_INFINITY, 1.0);
        lp.set_objective(x, 1.0);
        assert!(matches!(lp.validate(), Err(LpError::Malformed(_))));

        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 2.0, 1.0);
        lp.set_objective(x, 1.0);
        assert!(matches!(lp.validate(), Err(LpError::Malformed(_))));

        let mut lp = LpProblem::new(Objective::Minimize);
        let _x = lp.add_var("x", 0.0, 1.0);
        lp.add_constraint(&[(VarId(7), 1.0)], Relation::Le, 1.0);
        assert!(matches!(lp.validate(), Err(LpError::Malformed(_))));

        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 0.0, 1.0);
        lp.add_constraint(&[(x, f64::NAN)], Relation::Le, 1.0);
        assert!(matches!(lp.validate(), Err(LpError::Malformed(_))));

        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 0.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, f64::INFINITY);
        assert!(matches!(lp.validate(), Err(LpError::Malformed(_))));
    }

    #[test]
    fn validate_accepts_well_formed_problem() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 10.0);
        assert!(lp.validate().is_ok());
    }
}
