//! Frozen pre-refactor simplex kernel, kept verbatim as a bitwise oracle.
//!
//! This module is the dense two-phase primal simplex exactly as it existed
//! before the blocked/vectorized kernel landed in [`crate::simplex`]. It is
//! **not** part of the production solve path: [`LpProblem::solve`] and the
//! SSE solver always run the new kernel. The frozen copy exists for two
//! purposes only:
//!
//! * **equivalence testing** — property tests solve randomized and golden
//!   LPs through both kernels and assert bitwise-identical objectives,
//!   values, duals, bases and pivot counts (the refactor's hard bar);
//! * **benchmarking** — `sag-bench` measures kernel-vs-seed speedups by
//!   timing identical solve sequences on both workspaces.
//!
//! Do not "fix" or optimize this file; any behavioral edit silently
//! invalidates the oracle. The only intended differences from the original
//! `simplex.rs` are the type rename (`SimplexWorkspace` →
//! [`ReferenceWorkspace`]), the promotion of the two free solve functions to
//! public methods, and a trimmed test module (the full suite moved to the
//! new kernel, which the property tests hold to this one).

use crate::problem::LpProblem;
use crate::solution::{LpSolution, SolveStats};
use crate::standard::StandardForm;
use crate::{LpError, Result, EPS};

/// Hard cap on pivots (the pre-refactor behavior: a fixed budget regardless
/// of instance size; the new kernel scales its budget with the dimensions).
const MAX_PIVOTS: usize = 100_000;

/// Reusable state for repeated solves through the frozen reference kernel.
///
/// Mirrors the pre-refactor `SimplexWorkspace` field-for-field. Create one
/// and call [`ReferenceWorkspace::solve`] /
/// [`ReferenceWorkspace::solve_from_basis`] directly; the builder API on
/// [`LpProblem`] always routes to the new kernel.
#[derive(Debug, Clone, Default)]
pub struct ReferenceWorkspace {
    /// Standard form of the most recently loaded problem.
    sf: StandardForm,
    /// Flat `rows × total` tableau (structural + slack | artificials).
    a: Vec<f64>,
    /// Right-hand side per row (kept nonnegative by pivoting).
    b: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Cost vector of the current phase, length `total`.
    costs: Vec<f64>,
    /// Basic components of `costs`, refreshed before each pricing pass.
    cb: Vec<f64>,
    /// Scratch copy of the pivot row (avoids aliasing during elimination).
    pivot_row: Vec<f64>,
    /// Recycled buffers for [`LpSolution`] values.
    spare_values: Vec<Vec<f64>>,
    /// Recycled buffers for [`LpSolution`] bases.
    spare_bases: Vec<Vec<usize>>,
    /// Recycled buffers for [`LpSolution`] duals.
    spare_duals: Vec<Vec<f64>>,
    /// When set, solves skip the dual-extraction sweep.
    skip_duals: bool,
    /// Number of rows of the loaded tableau.
    rows: usize,
    /// Number of non-artificial columns of the loaded tableau.
    n: usize,
    /// Total number of columns, including artificials.
    total: usize,
    /// Pivot counter across phases (excluding warm-start factorization).
    pivots: usize,
}

impl ReferenceWorkspace {
    /// Create an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        ReferenceWorkspace::default()
    }

    /// Pivots performed by the most recent solve attempt on this workspace,
    /// including attempts that ended in an error.
    #[must_use]
    pub fn last_pivots(&self) -> usize {
        self.pivots
    }

    /// Choose whether solves on this workspace extract the constraint duals
    /// into the returned [`LpSolution`] (on by default).
    pub fn set_collect_duals(&mut self, collect: bool) {
        self.skip_duals = !collect;
    }

    /// Return a solved instance's buffers to the workspace so the next solve
    /// can reuse them instead of allocating.
    pub fn recycle(&mut self, solution: LpSolution) {
        let (values, basis, duals) = solution.into_buffers();
        self.spare_values.push(values);
        self.spare_bases.push(basis);
        self.spare_duals.push(duals);
    }

    /// Solve a validated problem cold (two phases) through the frozen
    /// kernel, reusing this workspace's buffers.
    pub fn solve(&mut self, problem: &LpProblem) -> Result<LpSolution> {
        problem.validate()?;
        self.load(problem);
        self.solve_loaded()
    }

    /// Solve a validated problem warm through the frozen kernel: seed phase
    /// 2 from `basis_hint` and fall back to the cold two-phase path when the
    /// hint is not a feasible basis for the new data.
    pub fn solve_from_basis(
        &mut self,
        problem: &LpProblem,
        basis_hint: &[usize],
    ) -> Result<LpSolution> {
        problem.validate()?;
        self.load(problem);
        if !self.factorize_basis(basis_hint) {
            self.init_tableau();
            return self.solve_loaded();
        }
        for v in &mut self.b {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.set_phase2_costs();
        self.optimize(false)?;
        Ok(self.extract(0, true))
    }

    /// The cold two-phase path over an already-loaded workspace.
    fn solve_loaded(&mut self) -> Result<LpSolution> {
        // ------------- Phase 1: minimize the sum of artificials -------------
        self.set_phase1_costs();
        self.optimize(true)?;
        if self.objective() > 1e-7 {
            return Err(LpError::Infeasible);
        }
        let phase1_pivots = self.pivots;

        // Drive any artificial still in the basis out of it (degenerate rows).
        for i in 0..self.rows {
            if self.basis[i] >= self.n {
                if let Some(col) = (0..self.n).find(|&j| self.a[i * self.total + j].abs() > EPS) {
                    self.pivot(i, col);
                }
                // If the whole row is zero the constraint was redundant; the
                // artificial stays basic at value zero, which is harmless.
            }
        }

        // ------------- Phase 2: original objective -------------
        self.set_phase2_costs();
        self.optimize(false)?;

        Ok(self.extract(phase1_pivots, false))
    }

    /// Load `problem` into the workspace: rebuild the standard form and the
    /// `[A | I]` tableau with the all-artificial basis.
    fn load(&mut self, problem: &LpProblem) {
        self.sf.rebuild(problem);
        self.init_tableau();
    }

    /// (Re)initialize the `[A | I]` tableau and the all-artificial basis
    /// from the already-built standard form.
    fn init_tableau(&mut self) {
        let m = self.sf.num_rows();
        let n = self.sf.num_cols();
        let total = n + m;
        self.rows = m;
        self.n = n;
        self.total = total;
        self.pivots = 0;

        self.a.clear();
        self.a.resize(m * total, 0.0);
        for i in 0..m {
            let row = &mut self.a[i * total..i * total + n];
            row.copy_from_slice(self.sf.row(i));
            self.a[i * total + n + i] = 1.0;
        }
        self.b.clear();
        self.b.extend_from_slice(&self.sf.b);
        self.basis.clear();
        self.basis.extend(n..n + m);
        self.pivot_row.clear();
        self.pivot_row.resize(total, 0.0);
        self.cb.clear();
        self.cb.resize(m, 0.0);
    }

    /// Fill [`Self::costs`] with the phase-1 objective (sum of artificials).
    fn set_phase1_costs(&mut self) {
        self.costs.clear();
        self.costs.resize(self.total, 0.0);
        for cost in self.costs.iter_mut().skip(self.n) {
            *cost = 1.0;
        }
    }

    /// Fill [`Self::costs`] with the original (phase-2) objective.
    fn set_phase2_costs(&mut self) {
        self.costs.clear();
        self.costs.extend_from_slice(&self.sf.c);
        self.costs.resize(self.total, 0.0);
    }

    /// Perform one pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let t = self.total;
        let pivot_val = self.a[row * t + col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on a (near-)zero element");
        let inv = 1.0 / pivot_val;
        {
            let r = &mut self.a[row * t..(row + 1) * t];
            for v in r.iter_mut() {
                *v *= inv;
            }
            // Clean tiny noise on the pivot column of the pivot row.
            r[col] = 1.0;
            self.pivot_row.copy_from_slice(r);
        }
        self.b[row] *= inv;
        let b_row = self.b[row];

        for i in 0..self.rows {
            if i == row {
                continue;
            }
            let factor = self.a[i * t + col];
            if factor.abs() <= EPS {
                self.a[i * t + col] = 0.0;
                continue;
            }
            let r = &mut self.a[i * t..(i + 1) * t];
            for (v, &p) in r.iter_mut().zip(&self.pivot_row) {
                *v -= factor * p;
            }
            r[col] = 0.0;
            self.b[i] -= factor * b_row;
            if self.b[i].abs() < EPS {
                self.b[i] = 0.0;
            }
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Reduced cost of column `j` under the current phase costs.
    fn reduced_cost(&self, j: usize) -> f64 {
        let mut rc = self.costs[j];
        for (i, &cb) in self.cb.iter().enumerate() {
            if cb != 0.0 {
                rc -= cb * self.a[i * self.total + j];
            }
        }
        rc
    }

    /// Objective value of the current basic solution under the phase costs.
    fn objective(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.b)
            .map(|(&bi, &b)| self.costs[bi] * b)
            .sum()
    }

    /// Run primal simplex iterations under the phase costs.
    fn optimize(&mut self, allow_artificials: bool) -> Result<()> {
        let scan = if allow_artificials {
            self.total
        } else {
            self.n
        };
        loop {
            if self.pivots > MAX_PIVOTS {
                return Err(self.iteration_limit());
            }
            for (i, &bi) in self.basis.iter().enumerate() {
                self.cb[i] = self.costs[bi];
            }
            // Bland's rule: entering column = smallest index with negative
            // reduced cost.
            let entering = (0..scan).find(|&j| self.reduced_cost(j) < -EPS);
            let Some(col) = entering else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on the smallest basic column index.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.rows {
                let aij = self.a[i * self.total + col];
                if aij > EPS {
                    let ratio = self.b[i] / aij;
                    let better = match best {
                        None => true,
                        Some((bi, br)) => {
                            ratio < br - EPS || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                        }
                    };
                    if better {
                        best = Some((i, ratio));
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }

    /// Re-derive the tableau for a caller-supplied basis by pivoting each
    /// hinted column into the corresponding row.
    fn factorize_basis(&mut self, hint: &[usize]) -> bool {
        if hint.len() != self.rows || hint.iter().any(|&j| j >= self.n) {
            return false;
        }
        for &col in hint {
            // Pick the not-yet-assigned row with the largest pivot magnitude
            // (partial pivoting keeps the factorization stable).
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.rows {
                if self.basis[i] < self.n {
                    continue; // row already assigned to a hinted column
                }
                let mag = self.a[i * self.total + col].abs();
                if mag > EPS && best.is_none_or(|(_, m)| mag > m) {
                    best = Some((i, mag));
                }
            }
            let Some((row, _)) = best else {
                return false; // singular: the hinted columns are dependent
            };
            self.pivot(row, col);
        }
        // Factorization pivots are initialization, not simplex iterations.
        self.pivots = 0;
        // The basis is only usable if the implied basic point is feasible.
        self.b.iter().all(|&v| v >= -1e-9)
    }

    /// The error reported when [`MAX_PIVOTS`] is exceeded.
    fn iteration_limit(&self) -> LpError {
        LpError::IterationLimit {
            iterations: self.pivots,
            rows: self.rows,
            cols: self.n,
        }
    }

    /// Extract the solution of the optimized tableau.
    fn extract(&mut self, phase1_pivots: usize, warm_started: bool) -> LpSolution {
        let mut values = self.spare_values.pop().unwrap_or_default();
        values.clear();
        values.resize(self.sf.num_structural, 0.0);
        let mut min_obj = 0.0;
        for (i, &bi) in self.basis.iter().enumerate() {
            if bi < self.n {
                min_obj += self.sf.c[bi] * self.b[i];
                if bi < self.sf.num_structural {
                    values[bi] = self.b[i];
                }
            }
        }
        for (j, v) in values.iter_mut().enumerate() {
            *v += self.sf.shifts[j];
        }
        let objective = self.sf.original_objective(min_obj);

        let mut basis = self.spare_bases.pop().unwrap_or_default();
        basis.clear();
        basis.extend_from_slice(&self.basis);

        let duals = if self.skip_duals {
            let mut duals = self.spare_duals.pop().unwrap_or_default();
            duals.clear();
            duals
        } else {
            self.extract_duals()
        };

        let stats = SolveStats {
            pivots: self.pivots,
            phase1_pivots,
            rows: self.rows,
            cols: self.n,
            warm_started,
        };
        LpSolution::new(objective, values, basis, duals, stats)
    }

    /// Compute the dual multipliers of the *original* constraints from the
    /// optimized tableau (see [`LpSolution::duals`] for the convention).
    fn extract_duals(&mut self) -> Vec<f64> {
        let mut duals = self.spare_duals.pop().unwrap_or_default();
        duals.clear();
        let num_original = self.sf.row_signs.len();
        let sign_obj = if self.sf.maximize { -1.0 } else { 1.0 };
        for i in 0..num_original {
            let mut pi = 0.0;
            for (r, &bi) in self.basis.iter().enumerate() {
                let cost = self.costs[bi];
                if cost != 0.0 {
                    pi += cost * self.a[r * self.total + self.n + i];
                }
            }
            duals.push(sign_obj * self.sf.row_signs[i] * pi);
        }
        duals
    }
}

#[cfg(test)]
mod tests {
    use super::ReferenceWorkspace;
    use crate::{LpError, LpProblem, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example)
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 3.0);
        lp.set_objective(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let mut ws = ReferenceWorkspace::new();
        let sol = ws.solve(&lp).unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert_eq!(sol.duals().len(), 3);
    }

    #[test]
    fn infeasible_and_unbounded_are_detected() {
        let mut ws = ReferenceWorkspace::new();
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 1.0);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(ws.solve(&lp).unwrap_err(), LpError::Infeasible);

        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(ws.solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn warm_start_from_own_optimal_basis_takes_zero_pivots() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 3.0);
        lp.set_objective(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let mut ws = ReferenceWorkspace::new();
        let cold = ws.solve(&lp).unwrap();
        let warm = ws.solve_from_basis(&lp, cold.basis()).unwrap();
        assert!(warm.stats().warm_started);
        assert_eq!(warm.stats().pivots, 0);
        assert_eq!(warm.objective().to_bits(), cold.objective().to_bits());
        assert_eq!(warm.values(), cold.values());
        assert_eq!(warm.duals(), cold.duals());
    }
}
