//! Solution and statistics types returned by the solver.

use crate::problem::VarId;

/// Statistics about a solve, useful for benchmarking and regression tracking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total simplex pivots across both phases (warm-start basis
    /// factorization excluded — it is bounded by the row count).
    pub pivots: usize,
    /// Pivots spent in phase 1 (driving artificial variables out). Zero for
    /// solves seeded from a warm basis.
    pub phase1_pivots: usize,
    /// Number of equality rows in the standard form.
    pub rows: usize,
    /// Number of columns in the standard form (excluding artificials).
    pub cols: usize,
    /// Whether the solve was seeded from a caller-supplied basis (and that
    /// basis was usable; a failed warm start that fell back to the cold
    /// two-phase path reports `false`).
    pub warm_started: bool,
}

/// An optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    objective: f64,
    values: Vec<f64>,
    basis: Vec<usize>,
    duals: Vec<f64>,
    stats: SolveStats,
}

impl LpSolution {
    /// Construct a solution (used by the solver).
    #[must_use]
    pub(crate) fn new(
        objective: f64,
        values: Vec<f64>,
        basis: Vec<usize>,
        duals: Vec<f64>,
        stats: SolveStats,
    ) -> Self {
        Self {
            objective,
            values,
            basis,
            duals,
            stats,
        }
    }

    /// Optimal objective value in the original optimization direction.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Optimal value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to the solved problem.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All optimal variable values, indexed by [`VarId::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The optimal basis: for each standard-form row, the column that is
    /// basic in it. Feed this to [`crate::LpProblem::solve_from_basis`] to
    /// warm-start a structurally identical solve.
    #[must_use]
    pub fn basis(&self) -> &[usize] {
        &self.basis
    }

    /// The dual multipliers of the original constraints, extracted from the
    /// optimal basis, indexed like [`crate::LpProblem::constraints`].
    ///
    /// Sign convention: for a **maximization**, the dual of a `≤` row is
    /// nonnegative and the dual of a `≥` row nonpositive (up to the solver's
    /// numerical noise); for a minimization the signs flip. Equality rows
    /// are free. Variable *bounds* are not rows here — their multipliers are
    /// implied (see [`crate::LpProblem::lagrangian_bound`], which folds the
    /// bounds into the bound it prices from these duals).
    #[must_use]
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Solver statistics for this solve.
    #[must_use]
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Tear the solution apart into its buffers (for workspace recycling).
    pub(crate) fn into_buffers(self) -> (Vec<f64>, Vec<usize>, Vec<f64>) {
        (self.values, self.basis, self.duals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_constructed_data() {
        let stats = SolveStats {
            pivots: 3,
            phase1_pivots: 1,
            rows: 2,
            cols: 4,
            warm_started: false,
        };
        let sol = LpSolution::new(7.5, vec![1.0, 2.0], vec![0, 1], vec![0.5], stats);
        assert_eq!(sol.objective(), 7.5);
        assert_eq!(sol.value(VarId(0)), 1.0);
        assert_eq!(sol.value(VarId(1)), 2.0);
        assert_eq!(sol.values(), &[1.0, 2.0]);
        assert_eq!(sol.basis(), &[0, 1]);
        assert_eq!(sol.duals(), &[0.5]);
        assert_eq!(sol.stats(), stats);
    }

    #[test]
    fn solution_clones_and_compares() {
        let sol = LpSolution::new(1.0, vec![0.5], vec![0], vec![], SolveStats::default());
        let copy = sol.clone();
        assert_eq!(copy, sol);
        assert_ne!(
            LpSolution::new(2.0, vec![0.5], vec![0], vec![], SolveStats::default()),
            sol
        );
    }

    #[test]
    fn into_buffers_returns_the_owned_vectors() {
        let sol = LpSolution::new(
            1.0,
            vec![0.5, 0.25],
            vec![1, 3],
            vec![2.0],
            SolveStats::default(),
        );
        let (values, basis, duals) = sol.into_buffers();
        assert_eq!(values, vec![0.5, 0.25]);
        assert_eq!(basis, vec![1, 3]);
        assert_eq!(duals, vec![2.0]);
    }
}
