//! Conversion of an [`LpProblem`] into equality standard form.
//!
//! The simplex routine in [`crate::simplex`] works on the canonical form
//!
//! ```text
//! minimize   c' y
//! subject to A y = b,   y >= 0,   b >= 0
//! ```
//!
//! This module performs the mechanical rewriting from the user-facing model:
//!
//! 1. every original variable `x_j ∈ [lo_j, hi_j]` is shifted to
//!    `y_j = x_j − lo_j ≥ 0`; a finite upper bound becomes an extra row
//!    `y_j ≤ hi_j − lo_j`;
//! 2. a maximization objective is negated (and the flip undone when reporting
//!    the objective value);
//! 3. every `≤` row gains a slack column, every `≥` row gains a surplus
//!    column, and rows are scaled so that the right-hand side is nonnegative.

use crate::problem::{LpProblem, Objective, Relation};

/// A linear program rewritten as `min c·y, A y = b, y ≥ 0, b ≥ 0`.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Dense row-major constraint matrix, `rows × cols`.
    pub a: Vec<Vec<f64>>,
    /// Right-hand side, all entries nonnegative.
    pub b: Vec<f64>,
    /// Minimization cost vector over the `cols` columns.
    pub c: Vec<f64>,
    /// Number of columns that correspond to (shifted) original variables.
    /// They occupy the first `num_structural` columns in order.
    pub num_structural: usize,
    /// Lower bounds of the original variables (the shift applied per column).
    pub shifts: Vec<f64>,
    /// Constant added to the (minimization) objective by the shift.
    pub objective_shift: f64,
    /// Whether the original problem was a maximization (so the reported
    /// objective must be negated back).
    pub maximize: bool,
}

impl StandardForm {
    /// Number of equality rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.a.len()
    }

    /// Number of columns (structural + slack/surplus).
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.c.len()
    }

    /// Recover a point over the original variables from a point over the
    /// standard-form columns.
    #[must_use]
    pub fn recover(&self, y: &[f64]) -> Vec<f64> {
        (0..self.num_structural).map(|j| y[j] + self.shifts[j]).collect()
    }

    /// Objective value of the *original* problem corresponding to the
    /// standard-form objective value `min_obj`.
    #[must_use]
    pub fn original_objective(&self, min_obj: f64) -> f64 {
        let shifted = min_obj + self.objective_shift;
        if self.maximize {
            -shifted
        } else {
            shifted
        }
    }

    /// Build the standard form of a (validated) problem.
    #[must_use]
    pub fn from_problem(problem: &LpProblem) -> Self {
        let n = problem.variables.len();
        let maximize = problem.objective == Objective::Maximize;

        // Cost over structural columns (after shift, minimization sense).
        let sign = if maximize { -1.0 } else { 1.0 };
        let mut objective_shift = 0.0;
        let mut c_structural = Vec::with_capacity(n);
        let mut shifts = Vec::with_capacity(n);
        for v in &problem.variables {
            c_structural.push(sign * v.objective);
            shifts.push(v.lower);
            objective_shift += sign * v.objective * v.lower;
        }

        // Collect rows as (dense coeffs over structural columns, relation, rhs)
        // with the variable shift folded into the rhs.
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::new();
        for cons in &problem.constraints {
            let mut coeffs = vec![0.0; n];
            let mut rhs = cons.rhs;
            for &(var, coeff) in &cons.terms {
                coeffs[var.index()] += coeff;
                rhs -= coeff * problem.variables[var.index()].lower;
            }
            rows.push((coeffs, cons.relation, rhs));
        }
        // Finite upper bounds become `y_j <= hi - lo` rows.
        for (j, v) in problem.variables.iter().enumerate() {
            if v.upper.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                rows.push((coeffs, Relation::Le, v.upper - v.lower));
            }
        }

        // Count slack/surplus columns needed.
        let num_slack = rows
            .iter()
            .filter(|(_, rel, _)| matches!(rel, Relation::Le | Relation::Ge))
            .count();
        let cols = n + num_slack;

        let mut a = Vec::with_capacity(rows.len());
        let mut b = Vec::with_capacity(rows.len());
        let mut c = c_structural;
        c.resize(cols, 0.0);

        let mut next_slack = n;
        for (coeffs, relation, rhs) in rows {
            let mut row = vec![0.0; cols];
            row[..n].copy_from_slice(&coeffs);
            match relation {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                }
                Relation::Eq => {}
            }
            let mut rhs = rhs;
            if rhs < 0.0 {
                for entry in &mut row {
                    *entry = -*entry;
                }
                rhs = -rhs;
            }
            a.push(row);
            b.push(rhs);
        }

        StandardForm { a, b, c, num_structural: n, shifts, objective_shift, maximize, }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Objective, Relation};

    fn toy_problem() -> LpProblem {
        // maximize 3x + 2y, x in [1, 4], y in [0, inf), x + y >= 2
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 1.0, 4.0);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 3.0);
        lp.set_objective(y, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        lp
    }

    #[test]
    fn shifts_and_dimensions() {
        let lp = toy_problem();
        let sf = StandardForm::from_problem(&lp);
        // rows: the >= constraint plus the finite upper bound of x
        assert_eq!(sf.num_rows(), 2);
        // cols: 2 structural + 1 surplus + 1 slack (for the bound row)
        assert_eq!(sf.num_cols(), 4);
        assert_eq!(sf.num_structural, 2);
        assert_eq!(sf.shifts, vec![1.0, 0.0]);
        assert!(sf.maximize);
    }

    #[test]
    fn rhs_is_nonnegative_and_shift_folded_in() {
        let lp = toy_problem();
        let sf = StandardForm::from_problem(&lp);
        for &rhs in &sf.b {
            assert!(rhs >= 0.0);
        }
        // x + y >= 2 with x = 1 + y0 becomes y0 + y1 >= 1.
        assert!((sf.b[0] - 1.0).abs() < 1e-12);
        // bound row: y0 <= 3
        assert!((sf.b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recover_and_objective_round_trip() {
        let lp = toy_problem();
        let sf = StandardForm::from_problem(&lp);
        // standard-form point y0 = 3 (x = 4), y1 = 0 (y = 0)
        let y = vec![3.0, 0.0, 0.0, 0.0];
        let x = sf.recover(&y);
        assert_eq!(x, vec![4.0, 0.0]);
        // min objective at that point is -(3*3) = -9 over shifted vars;
        // original objective must be 3*4 + 2*0 = 12.
        let min_obj: f64 = sf.c.iter().zip(&y).map(|(c, v)| c * v).sum();
        assert!((sf.original_objective(min_obj) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn negative_rhs_rows_are_flipped() {
        // x <= -1 with x in [-5, 0] shifts to y - 5 <= -1, i.e. y <= 4 — stays
        // positive. Use an equality with negative rhs instead: x == -2.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", -5.0, 0.0);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Eq, -2.0);
        let sf = StandardForm::from_problem(&lp);
        assert!(sf.b.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn minimization_objective_is_not_negated() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 0.0, 10.0);
        lp.set_objective(x, 5.0);
        let sf = StandardForm::from_problem(&lp);
        assert!(!sf.maximize);
        assert!((sf.c[0] - 5.0).abs() < 1e-12);
        assert!((sf.original_objective(15.0) - 15.0).abs() < 1e-12);
    }
}
