//! Conversion of an [`LpProblem`] into equality standard form.
//!
//! The simplex routine in [`crate::simplex`] works on the canonical form
//!
//! ```text
//! minimize   c' y
//! subject to A y = b,   y >= 0,   b >= 0
//! ```
//!
//! This module performs the mechanical rewriting from the user-facing model:
//!
//! 1. every original variable `x_j ∈ [lo_j, hi_j]` is shifted to
//!    `y_j = x_j − lo_j ≥ 0`; a finite upper bound becomes an extra row
//!    `y_j ≤ hi_j − lo_j`;
//! 2. a maximization objective is negated (and the flip undone when reporting
//!    the objective value);
//! 3. every `≤` row gains a slack column, every `≥` row gains a surplus
//!    column, and rows are scaled so that the right-hand side is nonnegative.
//!
//! The constraint matrix is stored as a single flat row-major `Vec<f64>` (see
//! [`StandardForm::row`]), and [`StandardForm::rebuild`] refills an existing
//! instance in place so the per-alert hot path performs no allocation once
//! the buffers have grown to the steady-state problem size. Row-major
//! contiguity is what the blocked simplex kernel's chunked pricing and
//! elimination loops vectorize over — keep any new layout changes row-major
//! or the kernel's speedup on many-type candidate LPs evaporates.

use crate::problem::{LpProblem, Objective, Relation};

/// A linear program rewritten as `min c·y, A y = b, y ≥ 0, b ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct StandardForm {
    /// Flat row-major constraint matrix, `rows × cols` (see [`Self::row`]).
    pub a: Vec<f64>,
    /// Right-hand side, all entries nonnegative.
    pub b: Vec<f64>,
    /// Minimization cost vector over the `cols` columns.
    pub c: Vec<f64>,
    /// Number of columns that correspond to (shifted) original variables.
    /// They occupy the first `num_structural` columns in order.
    pub num_structural: usize,
    /// Lower bounds of the original variables (the shift applied per column).
    pub shifts: Vec<f64>,
    /// Constant added to the (minimization) objective by the shift.
    pub objective_shift: f64,
    /// Whether the original problem was a maximization (so the reported
    /// objective must be negated back).
    pub maximize: bool,
    /// Per original constraint row, the sign (`+1.0` or `-1.0`) the row was
    /// scaled by to make its right-hand side nonnegative. Needed to map the
    /// simplex multipliers of the standard form back onto the original
    /// constraints (see [`crate::LpSolution::duals`]).
    pub row_signs: Vec<f64>,
}

impl StandardForm {
    /// Number of equality rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.b.len()
    }

    /// Number of columns (structural + slack/surplus).
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.c.len()
    }

    /// Row `i` of the constraint matrix as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        let cols = self.num_cols();
        &self.a[i * cols..(i + 1) * cols]
    }

    /// Recover a point over the original variables from a point over the
    /// standard-form columns.
    #[must_use]
    pub fn recover(&self, y: &[f64]) -> Vec<f64> {
        (0..self.num_structural)
            .map(|j| y[j] + self.shifts[j])
            .collect()
    }

    /// Objective value of the *original* problem corresponding to the
    /// standard-form objective value `min_obj`.
    #[must_use]
    pub fn original_objective(&self, min_obj: f64) -> f64 {
        let shifted = min_obj + self.objective_shift;
        if self.maximize {
            -shifted
        } else {
            shifted
        }
    }

    /// Build the standard form of a (validated) problem.
    #[must_use]
    pub fn from_problem(problem: &LpProblem) -> Self {
        let mut sf = StandardForm::default();
        sf.rebuild(problem);
        sf
    }

    /// Refill `self` from `problem`, reusing the existing buffers. After the
    /// first call on a given problem shape this performs no allocation.
    pub fn rebuild(&mut self, problem: &LpProblem) {
        let n = problem.variables.len();
        self.maximize = problem.objective == Objective::Maximize;
        self.num_structural = n;

        // Cost over structural columns (after shift, minimization sense).
        let sign = if self.maximize { -1.0 } else { 1.0 };
        self.objective_shift = 0.0;
        self.shifts.clear();
        for v in &problem.variables {
            self.shifts.push(v.lower);
            self.objective_shift += sign * v.objective * v.lower;
        }

        // Row and column counts: every `≤`/`≥` constraint takes one
        // slack/surplus column; every finite upper bound adds a `≤` row.
        let num_bound_rows = problem
            .variables
            .iter()
            .filter(|v| v.upper.is_finite())
            .count();
        let num_slack = problem
            .constraints
            .iter()
            .filter(|c| matches!(c.relation, Relation::Le | Relation::Ge))
            .count()
            + num_bound_rows;
        let rows = problem.constraints.len() + num_bound_rows;
        let cols = n + num_slack;

        self.c.clear();
        self.c.resize(cols, 0.0);
        for (j, v) in problem.variables.iter().enumerate() {
            self.c[j] = sign * v.objective;
        }

        self.a.clear();
        self.a.resize(rows * cols, 0.0);
        self.b.clear();
        self.b.resize(rows, 0.0);

        let mut next_slack = n;
        self.row_signs.clear();
        for (i, cons) in problem.constraints.iter().enumerate() {
            let row = &mut self.a[i * cols..(i + 1) * cols];
            let mut rhs = cons.rhs;
            for &(var, coeff) in &cons.terms {
                row[var.index()] += coeff;
                rhs -= coeff * problem.variables[var.index()].lower;
            }
            match cons.relation {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                }
                Relation::Eq => {}
            }
            if rhs < 0.0 {
                for entry in row.iter_mut() {
                    *entry = -*entry;
                }
                rhs = -rhs;
                self.row_signs.push(-1.0);
            } else {
                self.row_signs.push(1.0);
            }
            self.b[i] = rhs;
        }

        // Finite upper bounds become `y_j <= hi - lo` rows (rhs is always
        // nonnegative because bounds are validated as hi >= lo).
        let mut i = problem.constraints.len();
        for (j, v) in problem.variables.iter().enumerate() {
            if v.upper.is_finite() {
                let row = &mut self.a[i * cols..(i + 1) * cols];
                row[j] = 1.0;
                row[next_slack] = 1.0;
                next_slack += 1;
                self.b[i] = v.upper - v.lower;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Objective, Relation};

    fn toy_problem() -> LpProblem {
        // maximize 3x + 2y, x in [1, 4], y in [0, inf), x + y >= 2
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 1.0, 4.0);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 3.0);
        lp.set_objective(y, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        lp
    }

    #[test]
    fn shifts_and_dimensions() {
        let lp = toy_problem();
        let sf = StandardForm::from_problem(&lp);
        // rows: the >= constraint plus the finite upper bound of x
        assert_eq!(sf.num_rows(), 2);
        // cols: 2 structural + 1 surplus + 1 slack (for the bound row)
        assert_eq!(sf.num_cols(), 4);
        assert_eq!(sf.num_structural, 2);
        assert_eq!(sf.shifts, vec![1.0, 0.0]);
        assert!(sf.maximize);
        assert_eq!(sf.a.len(), sf.num_rows() * sf.num_cols());
    }

    #[test]
    fn rhs_is_nonnegative_and_shift_folded_in() {
        let lp = toy_problem();
        let sf = StandardForm::from_problem(&lp);
        for &rhs in &sf.b {
            assert!(rhs >= 0.0);
        }
        // x + y >= 2 with x = 1 + y0 becomes y0 + y1 >= 1.
        assert!((sf.b[0] - 1.0).abs() < 1e-12);
        // bound row: y0 <= 3
        assert!((sf.b[1] - 3.0).abs() < 1e-12);
        // Surplus on row 0, slack on row 1.
        assert_eq!(sf.row(0)[2], -1.0);
        assert_eq!(sf.row(1)[3], 1.0);
    }

    #[test]
    fn recover_and_objective_round_trip() {
        let lp = toy_problem();
        let sf = StandardForm::from_problem(&lp);
        // standard-form point y0 = 3 (x = 4), y1 = 0 (y = 0)
        let y = vec![3.0, 0.0, 0.0, 0.0];
        let x = sf.recover(&y);
        assert_eq!(x, vec![4.0, 0.0]);
        // min objective at that point is -(3*3) = -9 over shifted vars;
        // original objective must be 3*4 + 2*0 = 12.
        let min_obj: f64 = sf.c.iter().zip(&y).map(|(c, v)| c * v).sum();
        assert!((sf.original_objective(min_obj) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn negative_rhs_rows_are_flipped() {
        // x <= -1 with x in [-5, 0] shifts to y - 5 <= -1, i.e. y <= 4 — stays
        // positive. Use an equality with negative rhs instead: x == -2.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", -5.0, 0.0);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Eq, -2.0);
        let sf = StandardForm::from_problem(&lp);
        assert!(sf.b.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn minimization_objective_is_not_negated() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 0.0, 10.0);
        lp.set_objective(x, 5.0);
        let sf = StandardForm::from_problem(&lp);
        assert!(!sf.maximize);
        assert!((sf.c[0] - 5.0).abs() < 1e-12);
        assert!((sf.original_objective(15.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_reuses_buffers_and_matches_fresh_build() {
        let lp = toy_problem();
        let mut sf = StandardForm::from_problem(&lp);
        let fresh = StandardForm::from_problem(&lp);

        // Rebuild from a same-shape problem with different numbers: buffers
        // must be reused and the contents must match a fresh conversion.
        let mut lp2 = LpProblem::new(Objective::Maximize);
        let x = lp2.add_var("x", 1.5, 4.5);
        let y = lp2.add_var("y", 0.0, f64::INFINITY);
        lp2.set_objective(x, 2.0);
        lp2.set_objective(y, 1.0);
        lp2.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Ge, 3.0);
        sf.rebuild(&lp2);
        let fresh2 = StandardForm::from_problem(&lp2);
        assert_eq!(sf.a, fresh2.a);
        assert_eq!(sf.b, fresh2.b);
        assert_eq!(sf.c, fresh2.c);
        assert_eq!(sf.shifts, fresh2.shifts);

        // And rebuilding back reproduces the original exactly.
        sf.rebuild(&lp);
        assert_eq!(sf.a, fresh.a);
        assert_eq!(sf.b, fresh.b);
        assert_eq!(sf.c, fresh.c);
    }
}
