//! Dense two-phase primal simplex with a blocked, autovectorizable kernel.
//!
//! The tableau is a single flat row-major `Vec<f64>` owned by a reusable
//! [`SimplexWorkspace`]; once a workspace has grown to the steady-state
//! problem size, repeated solves perform no heap allocation (the returned
//! [`LpSolution`] buffers are recycled through
//! [`SimplexWorkspace::recycle`]). The three hot loops are written so the
//! stable-Rust autovectorizer turns them into SIMD without any nightly
//! features:
//!
//! * **pricing** — reduced costs are computed [`PRICE_BLOCK`] columns at a
//!   time: the block is seeded from the cost row and each basic row with a
//!   nonzero cost subtracts its contiguous `width`-wide slice in one pass.
//!   Per column this performs the exact operation sequence of the classic
//!   one-column-at-a-time scan (rows visited in ascending order, zero-cost
//!   rows skipped), so the values — and therefore the entering choice — are
//!   bitwise-identical to the frozen reference kernel while the inner loop
//!   runs over sequential memory instead of a `total`-strided walk;
//! * **ratio test** — the entering column is first gathered into a
//!   contiguous scratch buffer, then scanned sequentially;
//! * **elimination** — each row update runs in fixed-width
//!   [`ELIM_CHUNK`]-wide chunks plus a scalar remainder; element order and
//!   the `v -= factor * p` operation are unchanged, so every intermediate
//!   tableau is bit-for-bit the one the reference kernel produces.
//!
//! Entering-variable pricing defaults to Bland's rule (smallest index with a
//! negative reduced cost), which both guarantees termination on degenerate
//! instances and pins the pivot sequence to the pre-refactor kernel — the
//! property tests in `tests/property.rs` hold the whole solve bitwise equal
//! to [`crate::reference::ReferenceWorkspace`]. An opt-in
//! [`Pricing::Dantzig`] mode picks the most-negative reduced cost instead
//! (fewer pivots on larger programs) and automatically falls back to
//! Bland's rule after a streak of degenerate pivots, restoring the
//! anti-cycling guarantee.
//!
//! The pivot budget scales with the instance dimensions (see
//! [`SimplexWorkspace::pivot_limit`]) instead of the old hard
//! `MAX_PIVOTS = 100_000` cap, so a 128-type game cannot be starved by a
//! budget tuned for ≤10-row programs, and a genuinely pathological instance
//! still fails fast with its dimensions in [`LpError::IterationLimit`].
//!
//! Two entry points exist on top of the classic cold start:
//!
//! * [`solve`] — phase 1 builds a feasible basis from artificials, phase 2
//!   optimizes the original objective;
//! * [`solve_warm`] — seeds phase 2 directly from a caller-supplied basis
//!   (typically the optimal basis of a near-identical previous instance) and
//!   falls back to the cold path automatically when that basis is singular
//!   or infeasible for the new data.

use crate::problem::LpProblem;
use crate::solution::{LpSolution, SolveStats};
use crate::standard::StandardForm;
use crate::{LpError, Result, EPS};

/// Number of columns priced per blocked reduced-cost pass. 64 doubles
/// (512 B) fit comfortably in L1 alongside one tableau row slice, and the
/// fixed width lets the compiler unroll the inner subtraction into SIMD.
const PRICE_BLOCK: usize = 64;

/// Fixed chunk width of the row-elimination inner loop (8 doubles = one
/// 64-byte cache line; wide enough for 2×AVX2 / 1×AVX-512 per iteration).
const ELIM_CHUNK: usize = 8;

/// Base of the dimension-scaled pivot budget: even a 1×1 instance gets this
/// many pivots before the solver declares it pathological.
const PIVOT_LIMIT_BASE: usize = 1_000;

/// Per-dimension slope of the pivot budget. Non-degenerate simplex visits
/// at most one basis per vertex on a path whose practical length is a small
/// multiple of `rows + cols`; 500 per dimension is orders of magnitude above
/// anything a well-posed instance needs.
const PIVOT_LIMIT_PER_DIM: usize = 500;

/// Entering-variable pricing rule (see [`SimplexWorkspace::set_pricing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Bland's rule: smallest column index with a negative reduced cost.
    /// Terminates on degenerate instances and reproduces the frozen
    /// reference kernel's pivot sequence bit-for-bit. The default.
    #[default]
    Bland,
    /// Dantzig's rule: most-negative reduced cost (ties break to the lowest
    /// index). Usually fewer pivots on larger programs, with an automatic
    /// fallback to Bland's rule after a streak of degenerate pivots so the
    /// anti-cycling guarantee is preserved.
    Dantzig,
}

/// Reusable state for repeated simplex solves.
///
/// Owns the flat tableau, the right-hand side, the basis, the cost buffer
/// and recycled solution buffers. Create one per solver (or per thread) and
/// pass it to [`LpProblem::solve_with`] / [`LpProblem::solve_from_basis`].
#[derive(Debug, Clone, Default)]
pub struct SimplexWorkspace {
    /// Standard form of the most recently loaded problem.
    sf: StandardForm,
    /// Flat `rows × total` tableau (structural + slack | artificials).
    a: Vec<f64>,
    /// Right-hand side per row (kept nonnegative by pivoting).
    b: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Cost vector of the current phase, length `total`.
    costs: Vec<f64>,
    /// Basic components of `costs`, refreshed before each pricing pass.
    cb: Vec<f64>,
    /// Scratch copy of the pivot row (avoids aliasing during elimination).
    pivot_row: Vec<f64>,
    /// Contiguous gather of the entering column for the ratio test.
    col: Vec<f64>,
    /// Recycled buffers for [`LpSolution`] values.
    spare_values: Vec<Vec<f64>>,
    /// Recycled buffers for [`LpSolution`] bases.
    spare_bases: Vec<Vec<usize>>,
    /// Recycled buffers for [`LpSolution`] duals.
    spare_duals: Vec<Vec<f64>>,
    /// When set, solves skip the dual-extraction sweep and return solutions
    /// with an empty [`LpSolution::duals`] slice (see
    /// [`Self::set_collect_duals`]).
    skip_duals: bool,
    /// Entering-variable pricing rule for this workspace.
    pricing: Pricing,
    /// Consecutive degenerate pivots (leaving row at value zero); drives the
    /// Dantzig → Bland anti-cycling fallback.
    degenerate_streak: usize,
    /// Number of rows of the loaded tableau.
    rows: usize,
    /// Number of non-artificial columns of the loaded tableau.
    n: usize,
    /// Total number of columns, including artificials.
    total: usize,
    /// Pivot counter across phases (excluding warm-start factorization).
    pivots: usize,
}

impl SimplexWorkspace {
    /// Create an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        SimplexWorkspace::default()
    }

    /// Pivots performed by the most recent solve attempt on this workspace,
    /// including attempts that ended in an error such as
    /// [`LpError::Infeasible`] (whose work is otherwise invisible to the
    /// caller because no [`LpSolution`] is returned).
    #[must_use]
    pub fn last_pivots(&self) -> usize {
        self.pivots
    }

    /// Choose whether solves on this workspace extract the constraint duals
    /// into the returned [`LpSolution`] (on by default). The extraction is a
    /// dense `O(constraints × rows)` sweep over the artificial block —
    /// comparable to a pivot on the SAG-sized LPs — so callers that never
    /// price a [`LpProblem::lagrangian_bound`] (e.g. the exhaustive
    /// reference arm of the SSE solver) can turn it off; their solutions
    /// then report an empty [`LpSolution::duals`] slice.
    pub fn set_collect_duals(&mut self, collect: bool) {
        self.skip_duals = !collect;
    }

    /// Select the entering-variable [`Pricing`] rule for subsequent solves.
    /// The default, [`Pricing::Bland`], reproduces the frozen reference
    /// kernel's pivot sequence exactly; [`Pricing::Dantzig`] trades that
    /// reproducibility for fewer pivots on larger programs.
    pub fn set_pricing(&mut self, pricing: Pricing) {
        self.pricing = pricing;
    }

    /// The workspace's current entering-variable pricing rule.
    #[must_use]
    pub fn pricing(&self) -> Pricing {
        self.pricing
    }

    /// Return a solved instance's buffers to the workspace so the next solve
    /// can reuse them instead of allocating.
    pub fn recycle(&mut self, solution: LpSolution) {
        let (values, basis, duals) = solution.into_buffers();
        self.spare_values.push(values);
        self.spare_bases.push(basis);
        self.spare_duals.push(duals);
    }

    /// Load `problem` into the workspace: rebuild the standard form and the
    /// `[A | I]` tableau with the all-artificial basis.
    fn load(&mut self, problem: &LpProblem) {
        self.sf.rebuild(problem);
        self.init_tableau();
    }

    /// (Re)initialize the `[A | I]` tableau and the all-artificial basis
    /// from the already-built standard form.
    fn init_tableau(&mut self) {
        let m = self.sf.num_rows();
        let n = self.sf.num_cols();
        let total = n + m;
        self.rows = m;
        self.n = n;
        self.total = total;
        self.pivots = 0;
        self.degenerate_streak = 0;

        self.a.clear();
        self.a.resize(m * total, 0.0);
        for i in 0..m {
            let row = &mut self.a[i * total..i * total + n];
            row.copy_from_slice(self.sf.row(i));
            self.a[i * total + n + i] = 1.0;
        }
        self.b.clear();
        self.b.extend_from_slice(&self.sf.b);
        self.basis.clear();
        self.basis.extend(n..n + m);
        self.pivot_row.clear();
        self.pivot_row.resize(total, 0.0);
        self.cb.clear();
        self.cb.resize(m, 0.0);
    }

    /// Fill [`Self::costs`] with the phase-1 objective (sum of artificials).
    fn set_phase1_costs(&mut self) {
        self.costs.clear();
        self.costs.resize(self.total, 0.0);
        for cost in self.costs.iter_mut().skip(self.n) {
            *cost = 1.0;
        }
    }

    /// Fill [`Self::costs`] with the original (phase-2) objective.
    fn set_phase2_costs(&mut self) {
        self.costs.clear();
        self.costs.extend_from_slice(&self.sf.c);
        self.costs.resize(self.total, 0.0);
    }

    /// Perform one pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let t = self.total;
        let pivot_val = self.a[row * t + col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on a (near-)zero element");
        let inv = 1.0 / pivot_val;
        {
            let r = &mut self.a[row * t..(row + 1) * t];
            for v in r.iter_mut() {
                *v *= inv;
            }
            // Clean tiny noise on the pivot column of the pivot row.
            r[col] = 1.0;
            self.pivot_row.copy_from_slice(r);
        }
        self.b[row] *= inv;
        let b_row = self.b[row];

        for i in 0..self.rows {
            if i == row {
                continue;
            }
            let factor = self.a[i * t + col];
            if factor.abs() <= EPS {
                self.a[i * t + col] = 0.0;
                continue;
            }
            let r = &mut self.a[i * t..(i + 1) * t];
            // Fixed-width chunks give the autovectorizer straight-line
            // bodies; per-element order and the fused `v - factor * p`
            // expression are unchanged, so the updated row is bitwise the
            // one a scalar sweep produces.
            let mut r_chunks = r.chunks_exact_mut(ELIM_CHUNK);
            let mut p_chunks = self.pivot_row.chunks_exact(ELIM_CHUNK);
            for (rv, pv) in r_chunks.by_ref().zip(p_chunks.by_ref()) {
                for k in 0..ELIM_CHUNK {
                    rv[k] -= factor * pv[k];
                }
            }
            for (v, &p) in r_chunks
                .into_remainder()
                .iter_mut()
                .zip(p_chunks.remainder())
            {
                *v -= factor * p;
            }
            r[col] = 0.0;
            self.b[i] -= factor * b_row;
            if self.b[i].abs() < EPS {
                self.b[i] = 0.0;
            }
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Compute the reduced costs of columns `j0 .. j0 + rc.len()` into `rc`.
    ///
    /// The accumulation visits basic rows in ascending order and skips
    /// zero-cost rows — the reference kernel's per-column operation sequence
    /// — so each value is bitwise-identical to its one-column scan; only the
    /// traversal is restructured so the inner loop covers contiguous
    /// tableau entries the autovectorizer can pack into SIMD lanes.
    fn price_block(&self, j0: usize, rc: &mut [f64]) {
        let width = rc.len();
        rc.copy_from_slice(&self.costs[j0..j0 + width]);
        for (i, &cb) in self.cb.iter().enumerate() {
            if cb == 0.0 {
                continue;
            }
            let row = &self.a[i * self.total + j0..i * self.total + j0 + width];
            for (r, &v) in rc.iter_mut().zip(row) {
                *r -= cb * v;
            }
        }
    }

    /// Bland's rule over blocked reduced costs: the first column (lowest
    /// index) whose reduced cost is below `-EPS`, scanning block by block so
    /// later blocks are never priced once a candidate is found.
    fn price_entering_bland(&self, scan: usize) -> Option<usize> {
        let mut rc = [0.0_f64; PRICE_BLOCK];
        let mut j0 = 0;
        while j0 < scan {
            let width = PRICE_BLOCK.min(scan - j0);
            self.price_block(j0, &mut rc[..width]);
            if let Some(k) = rc[..width].iter().position(|&r| r < -EPS) {
                return Some(j0 + k);
            }
            j0 += width;
        }
        None
    }

    /// Dantzig's rule over blocked reduced costs: the most-negative reduced
    /// cost across the full scan range, ties broken toward the lowest index.
    fn price_entering_dantzig(&self, scan: usize) -> Option<usize> {
        let mut rc = [0.0_f64; PRICE_BLOCK];
        let mut best: Option<(usize, f64)> = None;
        let mut j0 = 0;
        while j0 < scan {
            let width = PRICE_BLOCK.min(scan - j0);
            self.price_block(j0, &mut rc[..width]);
            for (k, &r) in rc[..width].iter().enumerate() {
                if r < -EPS && best.is_none_or(|(_, br)| r < br) {
                    best = Some((j0 + k, r));
                }
            }
            j0 += width;
        }
        best.map(|(j, _)| j)
    }

    /// Gather the entering column into the contiguous [`Self::col`] scratch
    /// buffer so the ratio test reads sequential memory.
    fn gather_column(&mut self, col: usize) {
        self.col.clear();
        self.col
            .extend((0..self.rows).map(|i| self.a[i * self.total + col]));
    }

    /// Leaving-row ratio test over the gathered entering column; Bland
    /// tie-break on the smallest basic column index. Performs the same
    /// comparisons on the same values as the reference kernel's strided
    /// test, so the leaving choice is identical.
    fn ratio_test(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &aij) in self.col.iter().enumerate() {
            if aij > EPS {
                let ratio = self.b[i] / aij;
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - EPS || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Objective value of the current basic solution under the phase costs.
    fn objective(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.b)
            .map(|(&bi, &b)| self.costs[bi] * b)
            .sum()
    }

    /// Pivot budget for the loaded instance, scaled with its dimensions.
    /// Replaces the pre-refactor hard `100_000` cap: small SAG programs keep
    /// a still-enormous budget, while a 128-type game's larger instances
    /// earn a proportionally larger one, so a limit hit always means a
    /// pathological instance rather than an undersized constant.
    fn pivot_limit(&self) -> usize {
        PIVOT_LIMIT_BASE + PIVOT_LIMIT_PER_DIM * (self.rows + self.total)
    }

    /// Degenerate-pivot streak at which Dantzig pricing falls back to
    /// Bland's rule (scaled with the row count: longer degenerate chains are
    /// legitimate on taller instances).
    fn stall_limit(&self) -> usize {
        16 + 2 * self.rows
    }

    /// Run primal simplex iterations under the phase costs. When
    /// `allow_artificials` is false, artificial columns may not enter the
    /// basis. Returns `Ok(())` at optimality.
    fn optimize(&mut self, allow_artificials: bool) -> Result<()> {
        let scan = if allow_artificials {
            self.total
        } else {
            self.n
        };
        let limit = self.pivot_limit();
        loop {
            if self.pivots > limit {
                return Err(self.iteration_limit());
            }
            for (i, &bi) in self.basis.iter().enumerate() {
                self.cb[i] = self.costs[bi];
            }
            // Dantzig pricing hands over to Bland's rule while a degenerate
            // streak is running: Bland cannot cycle, and the streak resets
            // on the first pivot that moves the objective.
            let use_bland =
                self.pricing == Pricing::Bland || self.degenerate_streak > self.stall_limit();
            let entering = if use_bland {
                self.price_entering_bland(scan)
            } else {
                self.price_entering_dantzig(scan)
            };
            let Some(col) = entering else {
                return Ok(());
            };
            self.gather_column(col);
            let Some(row) = self.ratio_test() else {
                return Err(LpError::Unbounded);
            };
            if self.b[row] <= EPS {
                self.degenerate_streak += 1;
            } else {
                self.degenerate_streak = 0;
            }
            self.pivot(row, col);
        }
    }

    /// Re-derive the tableau for a caller-supplied basis by pivoting each
    /// hinted column into the corresponding row. Returns `false` when the
    /// hint does not describe a usable basis for this instance (wrong size,
    /// artificial columns, a singular basis matrix, or an infeasible
    /// right-hand side), in which case the caller should fall back to the
    /// cold two-phase path.
    fn factorize_basis(&mut self, hint: &[usize]) -> bool {
        if hint.len() != self.rows || hint.iter().any(|&j| j >= self.n) {
            return false;
        }
        for &col in hint {
            // Pick the not-yet-assigned row with the largest pivot magnitude
            // (partial pivoting keeps the factorization stable).
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.rows {
                if self.basis[i] < self.n {
                    continue; // row already assigned to a hinted column
                }
                let mag = self.a[i * self.total + col].abs();
                if mag > EPS && best.is_none_or(|(_, m)| mag > m) {
                    best = Some((i, mag));
                }
            }
            let Some((row, _)) = best else {
                return false; // singular: the hinted columns are dependent
            };
            self.pivot(row, col);
        }
        // Factorization pivots are initialization, not simplex iterations;
        // keep them out of the reported pivot count (see [`SolveStats`]).
        self.pivots = 0;
        self.degenerate_streak = 0;
        // The basis is only usable if the implied basic point is feasible.
        self.b.iter().all(|&v| v >= -1e-9)
    }

    /// The error reported when [`Self::pivot_limit`] is exceeded, carrying
    /// the instance dimensions for debuggability.
    fn iteration_limit(&self) -> LpError {
        LpError::IterationLimit {
            iterations: self.pivots,
            rows: self.rows,
            cols: self.n,
        }
    }

    /// Extract the solution of the optimized tableau.
    fn extract(&mut self, phase1_pivots: usize, warm_started: bool) -> LpSolution {
        let mut values = self.spare_values.pop().unwrap_or_default();
        values.clear();
        values.resize(self.sf.num_structural, 0.0);
        let mut min_obj = 0.0;
        for (i, &bi) in self.basis.iter().enumerate() {
            if bi < self.n {
                min_obj += self.sf.c[bi] * self.b[i];
                if bi < self.sf.num_structural {
                    values[bi] = self.b[i];
                }
            }
        }
        for (j, v) in values.iter_mut().enumerate() {
            *v += self.sf.shifts[j];
        }
        let objective = self.sf.original_objective(min_obj);

        let mut basis = self.spare_bases.pop().unwrap_or_default();
        basis.clear();
        basis.extend_from_slice(&self.basis);

        let duals = if self.skip_duals {
            let mut duals = self.spare_duals.pop().unwrap_or_default();
            duals.clear();
            duals
        } else {
            self.extract_duals()
        };

        let stats = SolveStats {
            pivots: self.pivots,
            phase1_pivots,
            rows: self.rows,
            cols: self.n,
            warm_started,
        };
        LpSolution::new(objective, values, basis, duals, stats)
    }

    /// Compute the dual multipliers of the *original* constraints from the
    /// optimized tableau (see [`LpSolution::duals`] for the convention).
    ///
    /// The simplex multipliers of the standard form are `π = c_B B⁻¹`, and
    /// column `n + i` of the final tableau is exactly `B⁻¹ e_i` (the
    /// artificial columns start as the identity), so `π_i` is a dot product
    /// of the basic costs with that column. Mapping back to the original
    /// constraint `i` undoes the two sign rewrites of the standard form:
    /// the objective negation of a maximization and the row flip applied
    /// when the shifted right-hand side was negative.
    fn extract_duals(&mut self) -> Vec<f64> {
        let mut duals = self.spare_duals.pop().unwrap_or_default();
        duals.clear();
        let num_original = self.sf.row_signs.len();
        let sign_obj = if self.sf.maximize { -1.0 } else { 1.0 };
        for i in 0..num_original {
            let mut pi = 0.0;
            for (r, &bi) in self.basis.iter().enumerate() {
                let cost = self.costs[bi];
                if cost != 0.0 {
                    pi += cost * self.a[r * self.total + self.n + i];
                }
            }
            duals.push(sign_obj * self.sf.row_signs[i] * pi);
        }
        duals
    }
}

/// Solve a validated problem cold (two phases), reusing `ws` buffers.
pub(crate) fn solve(problem: &LpProblem, ws: &mut SimplexWorkspace) -> Result<LpSolution> {
    ws.load(problem);
    solve_loaded(ws)
}

/// The cold two-phase path over an already-loaded workspace.
fn solve_loaded(ws: &mut SimplexWorkspace) -> Result<LpSolution> {
    // ---------------- Phase 1: minimize the sum of artificials ----------------
    ws.set_phase1_costs();
    ws.optimize(true)?;
    if ws.objective() > 1e-7 {
        return Err(LpError::Infeasible);
    }
    let phase1_pivots = ws.pivots;

    // Drive any artificial still in the basis out of it (degenerate rows).
    for i in 0..ws.rows {
        if ws.basis[i] >= ws.n {
            if let Some(col) = (0..ws.n).find(|&j| ws.a[i * ws.total + j].abs() > EPS) {
                ws.pivot(i, col);
            }
            // If the whole row is zero the constraint was redundant; the
            // artificial stays basic at value zero, which is harmless as long
            // as it is never allowed to re-enter with a nonzero value. Since
            // its row is all zeros it cannot change any other variable.
        }
    }

    // ---------------- Phase 2: original objective ----------------
    ws.set_phase2_costs();
    ws.optimize(false)?;

    Ok(ws.extract(phase1_pivots, false))
}

/// Solve a validated problem warm: seed phase 2 from `basis_hint` (the
/// row-ordered optimal basis of a previous, structurally identical solve).
/// Falls back to the cold two-phase path when the hint is not a feasible
/// basis for the new data.
pub(crate) fn solve_warm(
    problem: &LpProblem,
    ws: &mut SimplexWorkspace,
    basis_hint: &[usize],
) -> Result<LpSolution> {
    ws.load(problem);
    if !ws.factorize_basis(basis_hint) {
        // Fall back cold. The standard form is already built; only the
        // tableau was dirtied by the partial factorization.
        ws.init_tableau();
        return solve_loaded(ws);
    }
    // Clamp the tiny negative noise tolerated by the feasibility check.
    for v in &mut ws.b {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    ws.set_phase2_costs();
    ws.optimize(false)?;
    Ok(ws.extract(0, true))
}

#[cfg(test)]
mod tests {
    use super::{Pricing, SimplexWorkspace};
    use crate::reference::ReferenceWorkspace;
    use crate::{LpError, LpProblem, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example)
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 3.0);
        lp.set_objective(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 2.0, f64::INFINITY);
        let y = lp.add_var("y", 3.0, f64::INFINITY);
        lp.set_objective(x, 2.0);
        lp.set_objective(y, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 2.0 * 7.0 + 3.0 * 3.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + 2y == 4, x <= 3
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 3.0);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.set_objective(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 3.5);
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 0.5);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 1.0);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn contradictory_constraints_are_infeasible() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_is_detected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bounded_variables_without_constraints() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", -2.0, 5.0);
        let y = lp.add_var("y", 1.0, 3.0);
        lp.set_objective(x, 2.0);
        lp.set_objective(y, -1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(x), 5.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective(), 9.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y, x in [-10, 10], y in [-5, 5], x + y >= -3
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", -10.0, 10.0);
        let y = lp.add_var("y", -5.0, 5.0);
        lp.set_objective(x, 1.0);
        lp.set_objective(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, -3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), -3.0);
        assert!(lp.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate instance (multiple constraints active at the
        // optimum); Bland's rule must not cycle.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x1 = lp.add_var("x1", 0.0, f64::INFINITY);
        let x2 = lp.add_var("x2", 0.0, f64::INFINITY);
        let x3 = lp.add_var("x3", 0.0, f64::INFINITY);
        lp.set_objective(x1, 10.0);
        lp.set_objective(x2, -57.0);
        lp.set_objective(x3, -9.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        // Known optimum of the Beale-style cycling example (restricted): 1.
        assert!(sol.objective() >= 1.0 - 1e-7);
        assert!(lp.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y == 2 listed twice; solution must still be found.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 2.0);
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn zero_rhs_and_zero_objective() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 0.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 0.0);
        assert_close(sol.value(x), 0.0);
    }

    #[test]
    fn stats_are_populated() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 4.0);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 2.0);
        let sol = lp.solve().unwrap();
        let stats = sol.stats();
        assert!(stats.pivots >= 1);
        assert!(stats.rows >= 1);
        assert!(stats.cols >= 1);
        assert!(stats.phase1_pivots <= stats.pivots);
        assert!(!stats.warm_started);
    }

    #[test]
    fn lp3_shaped_signaling_program() {
        // The OSSP program LP (3) from the paper with Table 2 type 1 payoffs
        // and theta = 0.3, including the attacker-participation constraint
        // p0*Ua,c + q0*Ua,u >= 0 that the Theorem 3 proof treats as implicit
        // ("if not the case, the attacker will not attack initially"):
        //   max 100 p0 - 400 q0
        //   s.t. -2000 p1 + 400 q1 <= 0
        //        -2000 p0 + 400 q0 >= 0
        //        p1 + p0 = 0.3
        //        q1 + q0 = 0.7
        //        all in [0, 1]
        let (udc, udu, uac, uau) = (100.0, -400.0, -2000.0, 400.0);
        let theta = 0.3;
        let mut lp = LpProblem::new(Objective::Maximize);
        let p1 = lp.add_prob_var("p1");
        let q1 = lp.add_prob_var("q1");
        let p0 = lp.add_prob_var("p0");
        let q0 = lp.add_prob_var("q0");
        lp.set_objective(p0, udc);
        lp.set_objective(q0, udu);
        lp.add_constraint(&[(p1, uac), (q1, uau)], Relation::Le, 0.0);
        lp.add_constraint(&[(p0, uac), (q0, uau)], Relation::Ge, 0.0);
        lp.add_constraint(&[(p1, 1.0), (p0, 1.0)], Relation::Eq, theta);
        lp.add_constraint(&[(q1, 1.0), (q0, 1.0)], Relation::Eq, 1.0 - theta);
        let sol = lp.solve().unwrap();
        // Theorem 3 closed form: beta = 0.3*(-2000) + 0.7*400 = -320 <= 0,
        // so p0 = q0 = 0 and the auditor gets 0 (full deterrence).
        assert_close(sol.objective(), 0.0);
        assert_close(sol.value(p0), 0.0);
        assert_close(sol.value(q0), 0.0);
        assert_close(sol.value(p1), theta);
        assert_close(sol.value(q1), 1.0 - theta);
    }

    fn dantzig_with_budget(budget: f64) -> LpProblem {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 3.0);
        lp.set_objective(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, budget);
        lp
    }

    /// A wide box-constrained program whose standard form spans several
    /// 64-column pricing blocks.
    fn wide_program(vars: usize) -> LpProblem {
        let mut lp = LpProblem::new(Objective::Maximize);
        let ids: Vec<_> = (0..vars)
            .map(|i| lp.add_var(format!("x{i}"), 0.0, 1.0))
            .collect();
        for (i, &v) in ids.iter().enumerate() {
            lp.set_objective(v, 1.0 + (i % 7) as f64);
        }
        let all: Vec<_> = ids.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&all, Relation::Le, vars as f64 / 10.0);
        let half: Vec<_> = ids.iter().step_by(2).map(|&v| (v, 2.0)).collect();
        lp.add_constraint(&half, Relation::Ge, 1.0);
        lp
    }

    #[test]
    fn duals_of_the_textbook_maximization_satisfy_strong_duality() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: the classic
        // optimal duals are (0, 3/2, 1), and y·b = 0 + 18 + 18 = 36 = opt.
        let lp = dantzig_with_budget(18.0);
        let sol = lp.solve().unwrap();
        let duals = sol.duals();
        assert_eq!(duals.len(), 3);
        assert_close(duals[0], 0.0);
        assert_close(duals[1], 1.5);
        assert_close(duals[2], 1.0);
        // The Lagrangian bound priced from the optimal duals on the *same*
        // data is tight.
        let mut scratch = Vec::new();
        assert_close(lp.lagrangian_bound(duals, &mut scratch), sol.objective());
    }

    #[test]
    fn duals_cover_minimization_and_flipped_rows() {
        // min 2x + 3y s.t. x + y >= 10 (binding, dual 2): bound = 2*10 +
        // min(0, ...) terms over the finite lower bounds.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 2.0, f64::INFINITY);
        let y = lp.add_var("y", 3.0, f64::INFINITY);
        lp.set_objective(x, 2.0);
        lp.set_objective(y, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.duals()[0], 2.0);
        let mut scratch = Vec::new();
        let bound = lp.lagrangian_bound(sol.duals(), &mut scratch);
        assert_close(bound, sol.objective());

        // A `<=` row with a negative right-hand side is sign-flipped in the
        // standard form; the reported dual must still be in original-row
        // coordinates. max -3x s.t. -x <= -2 (i.e. x >= 2): dual 3.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 10.0);
        lp.set_objective(x, -3.0);
        lp.add_constraint(&[(x, -1.0)], Relation::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), -6.0);
        assert_close(sol.duals()[0], 3.0);
        let bound = lp.lagrangian_bound(sol.duals(), &mut scratch);
        assert_close(bound, -6.0);
    }

    #[test]
    fn repriced_bound_stays_above_the_drifted_optimum() {
        // The incremental-pruning contract: duals of one solve, re-priced
        // against perturbed data, upper-bound the perturbed optimum.
        let mut ws = SimplexWorkspace::new();
        let base = dantzig_with_budget(18.0);
        let sol = base.solve_with(&mut ws).unwrap();
        let mut scratch = Vec::new();
        for step in 0..30 {
            let budget = 18.0 - 0.4 * step as f64;
            let lp = dantzig_with_budget(budget);
            let bound = lp.lagrangian_bound(sol.duals(), &mut scratch);
            let opt = lp.solve_with(&mut ws).unwrap().objective();
            assert!(
                bound >= opt - 1e-9,
                "budget {budget}: bound {bound} below optimum {opt}"
            );
        }
    }

    #[test]
    fn garbage_duals_still_give_a_valid_if_loose_bound() {
        // Wrong-signed multipliers are clamped away; arbitrary magnitudes
        // only loosen the bound, never invalidate it.
        let lp = dantzig_with_budget(18.0);
        let opt = lp.solve().unwrap().objective();
        let mut scratch = Vec::new();
        for duals in [
            [0.0, 0.0, 0.0],
            [-5.0, -1.0, -2.0], // all wrong-signed: clamped to zero
            [10.0, 0.25, 3.0],
            [0.0, 1.5, 1.0],
        ] {
            let bound = lp.lagrangian_bound(&duals, &mut scratch);
            assert!(
                bound >= opt - 1e-9,
                "duals {duals:?}: bound {bound} below optimum {opt}"
            );
        }
        // With no binding multipliers the bound degrades to the (infinite)
        // box optimum — "no information", not an invalid exclusion.
        assert_eq!(
            lp.lagrangian_bound(&[0.0, 0.0, 0.0], &mut scratch),
            f64::INFINITY
        );
    }

    #[test]
    fn warm_solutions_carry_duals_too() {
        let lp = dantzig_with_budget(18.0);
        let mut ws = SimplexWorkspace::new();
        let cold = lp.solve_with(&mut ws).unwrap();
        let warm = lp.solve_from_basis(&mut ws, cold.basis()).unwrap();
        assert!(warm.stats().warm_started);
        assert_eq!(warm.duals(), cold.duals());
    }

    #[test]
    fn warm_start_from_own_optimal_basis_takes_zero_pivots() {
        let lp = dantzig_with_budget(18.0);
        let mut ws = SimplexWorkspace::new();
        let cold = lp.solve_with(&mut ws).unwrap();
        let warm = lp.solve_from_basis(&mut ws, cold.basis()).unwrap();
        assert!(warm.stats().warm_started);
        assert_eq!(warm.stats().pivots, 0);
        assert_close(warm.objective(), cold.objective());
        assert_eq!(warm.values(), cold.values());
    }

    #[test]
    fn warm_start_tracks_perturbed_rhs() {
        let mut ws = SimplexWorkspace::new();
        let base = dantzig_with_budget(18.0);
        let cold_base = base.solve_with(&mut ws).unwrap();
        let mut basis = cold_base.basis().to_vec();
        for step in 1..=20 {
            let budget = 18.0 - 0.5 * step as f64;
            let lp = dantzig_with_budget(budget);
            let warm = lp.solve_from_basis(&mut ws, &basis).unwrap();
            let cold = lp.solve().unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs() < 1e-9,
                "budget {budget}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
            basis.clear();
            basis.extend_from_slice(warm.basis());
        }
    }

    #[test]
    fn warm_start_with_garbage_basis_falls_back_to_cold() {
        let lp = dantzig_with_budget(18.0);
        let mut ws = SimplexWorkspace::new();
        // Wrong length.
        let warm = lp.solve_from_basis(&mut ws, &[0]).unwrap();
        assert!(!warm.stats().warm_started);
        assert_close(warm.objective(), 36.0);
        // Out-of-range (artificial) columns.
        let warm = lp.solve_from_basis(&mut ws, &[99, 100, 101]).unwrap();
        assert!(!warm.stats().warm_started);
        assert_close(warm.objective(), 36.0);
        // Dependent columns (x appears twice): singular basis matrix.
        let warm = lp.solve_from_basis(&mut ws, &[0, 0, 1]).unwrap();
        assert!(!warm.stats().warm_started);
        assert_close(warm.objective(), 36.0);
    }

    #[test]
    fn warm_start_with_infeasible_basis_falls_back_to_cold() {
        // The optimal basis at a large budget prices x and y basic; shrink
        // the rhs so that basis would imply a negative slack and check the
        // fallback still produces the optimum.
        let big = dantzig_with_budget(18.0);
        let mut ws = SimplexWorkspace::new();
        let basis = big.solve_with(&mut ws).unwrap().basis().to_vec();

        let mut tight = LpProblem::new(Objective::Maximize);
        let x = tight.add_var("x", 0.0, f64::INFINITY);
        let y = tight.add_var("y", 0.0, f64::INFINITY);
        tight.set_objective(x, 3.0);
        tight.set_objective(y, 5.0);
        tight.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        tight.add_constraint(&[(y, 2.0)], Relation::Le, 2.0);
        tight.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 2.0);
        let warm = tight.solve_from_basis(&mut ws, &basis).unwrap();
        let cold = tight.solve().unwrap();
        assert_close(warm.objective(), cold.objective());
    }

    #[test]
    fn workspace_is_reusable_across_shapes() {
        let mut ws = SimplexWorkspace::new();
        let a = dantzig_with_budget(18.0).solve_with(&mut ws).unwrap();
        assert_close(a.objective(), 36.0);

        // Solve a differently shaped problem with the same workspace.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 2.0, f64::INFINITY);
        lp.set_objective(x, 4.0);
        let b = lp.solve_with(&mut ws).unwrap();
        assert_close(b.objective(), 8.0);

        // And go back.
        let c = dantzig_with_budget(18.0).solve_with(&mut ws).unwrap();
        assert_close(c.objective(), 36.0);
        ws.recycle(a);
        ws.recycle(b);
        ws.recycle(c);
    }

    #[test]
    fn recycled_solutions_do_not_leak_between_solves() {
        let mut ws = SimplexWorkspace::new();
        let a = dantzig_with_budget(18.0).solve_with(&mut ws).unwrap();
        let expected = (a.objective(), a.values().to_vec());
        ws.recycle(a);
        let b = dantzig_with_budget(18.0).solve_with(&mut ws).unwrap();
        assert_close(b.objective(), expected.0);
        assert_eq!(b.values(), &expected.1[..]);
    }

    #[test]
    fn kernel_matches_the_frozen_reference_bitwise() {
        // The full-suite bitwise property lives in tests/property.rs; this
        // smoke check pins the contract on the canonical textbook program.
        let lp = dantzig_with_budget(18.0);
        let mut ws = SimplexWorkspace::new();
        let mut reference = ReferenceWorkspace::new();
        let new = lp.solve_with(&mut ws).unwrap();
        let old = reference.solve(&lp).unwrap();
        assert_eq!(new.objective().to_bits(), old.objective().to_bits());
        assert_eq!(new.values(), old.values());
        assert_eq!(new.duals(), old.duals());
        assert_eq!(new.basis(), old.basis());
        assert_eq!(new.stats(), old.stats());
    }

    #[test]
    fn wide_programs_cross_block_boundaries_bitwise() {
        // 150 structural variables push the standard form well past two
        // PRICE_BLOCK widths, exercising the blocked pricing remainder path
        // against the frozen reference on every block boundary.
        let lp = wide_program(150);
        let mut ws = SimplexWorkspace::new();
        let mut reference = ReferenceWorkspace::new();
        let new = lp.solve_with(&mut ws).unwrap();
        let old = reference.solve(&lp).unwrap();
        assert_eq!(new.objective().to_bits(), old.objective().to_bits());
        assert_eq!(new.values(), old.values());
        assert_eq!(new.duals(), old.duals());
        assert_eq!(new.basis(), old.basis());
        assert_eq!(new.stats(), old.stats());
        assert!(new.stats().pivots > 0);
    }

    #[test]
    fn pivot_limit_scales_with_dimensions() {
        let mut ws = SimplexWorkspace::new();
        dantzig_with_budget(18.0).solve_with(&mut ws).unwrap();
        let small_limit = ws.pivot_limit();
        // The old behavior was a hard 100_000 regardless of size; the small
        // SAG-sized instance now gets a tighter (still enormous) budget.
        assert!(small_limit >= 1_000);
        wide_program(150).solve_with(&mut ws).unwrap();
        let large_limit = ws.pivot_limit();
        assert!(
            large_limit > small_limit,
            "expected the 150-var budget {large_limit} to exceed the 2-var budget {small_limit}"
        );
        // Large instances earn budgets beyond the old hard cap.
        assert!(large_limit > 100_000);
    }

    #[test]
    fn dantzig_pricing_reaches_the_same_optimum() {
        let mut ws = SimplexWorkspace::new();
        ws.set_pricing(Pricing::Dantzig);
        assert_eq!(ws.pricing(), Pricing::Dantzig);
        let sol = dantzig_with_budget(18.0).solve_with(&mut ws).unwrap();
        assert_close(sol.objective(), 36.0);
        let wide = wide_program(150);
        let fast = wide.solve_with(&mut ws).unwrap();
        let mut bland_ws = SimplexWorkspace::new();
        let exact = wide.solve_with(&mut bland_ws).unwrap();
        assert_close(fast.objective(), exact.objective());
    }

    #[test]
    fn dantzig_pricing_terminates_on_degenerate_instances() {
        // The Beale-style restricted cycling example: Dantzig's rule alone
        // can cycle here; the stall fallback must hand over to Bland's rule
        // and still reach the optimum.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x1 = lp.add_var("x1", 0.0, f64::INFINITY);
        let x2 = lp.add_var("x2", 0.0, f64::INFINITY);
        let x3 = lp.add_var("x3", 0.0, f64::INFINITY);
        lp.set_objective(x1, 10.0);
        lp.set_objective(x2, -57.0);
        lp.set_objective(x3, -9.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 1.0)], Relation::Le, 1.0);
        let mut ws = SimplexWorkspace::new();
        ws.set_pricing(Pricing::Dantzig);
        let sol = lp.solve_with(&mut ws).unwrap();
        assert!(sol.objective() >= 1.0 - 1e-7);
        assert!(lp.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn warm_starts_stay_bitwise_equal_to_the_reference() {
        let mut ws = SimplexWorkspace::new();
        let mut reference = ReferenceWorkspace::new();
        let base = dantzig_with_budget(18.0);
        let cold = base.solve_with(&mut ws).unwrap();
        for step in 1..=10 {
            let budget = 18.0 - 0.5 * step as f64;
            let lp = dantzig_with_budget(budget);
            let new = lp.solve_from_basis(&mut ws, cold.basis()).unwrap();
            let old = reference.solve_from_basis(&lp, cold.basis()).unwrap();
            assert_eq!(new.objective().to_bits(), old.objective().to_bits());
            assert_eq!(new.values(), old.values());
            assert_eq!(new.duals(), old.duals());
            assert_eq!(new.basis(), old.basis());
            assert_eq!(new.stats(), old.stats());
        }
    }
}
