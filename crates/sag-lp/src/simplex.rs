//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! The implementation is deliberately simple: a dense tableau, reduced costs
//! recomputed from the basis on every iteration, and Bland's rule for both the
//! entering and the leaving variable. This is O(m·n) work per pivot, which is
//! perfectly adequate for the tiny programs produced by the SAG (≤ ~10 rows
//! and columns) while guaranteeing termination on degenerate instances.

use crate::problem::LpProblem;
use crate::solution::{LpSolution, SolveStats};
use crate::standard::StandardForm;
use crate::{LpError, Result, EPS};

/// Hard cap on pivots. The SAG LPs finish in a handful of pivots; anything
/// approaching this bound indicates a malformed or pathological instance.
const MAX_PIVOTS: usize = 100_000;

/// Mutable simplex state: tableau rows, right-hand side and current basis.
struct Tableau {
    /// `rows × cols` coefficient matrix (artificials included).
    a: Vec<Vec<f64>>,
    /// Right-hand side per row (kept nonnegative by pivoting).
    b: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Total number of columns, including artificials.
    cols: usize,
    /// Pivot counter across phases.
    pivots: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.a[row][col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on a (near-)zero element");
        let inv = 1.0 / pivot_val;
        for j in 0..self.cols {
            self.a[row][j] *= inv;
        }
        self.b[row] *= inv;
        // Clean tiny noise on the pivot column of the pivot row.
        self.a[row][col] = 1.0;

        for i in 0..self.a.len() {
            if i == row {
                continue;
            }
            let factor = self.a[i][col];
            if factor.abs() <= EPS {
                self.a[i][col] = 0.0;
                continue;
            }
            for j in 0..self.cols {
                self.a[i][j] -= factor * self.a[row][j];
            }
            self.b[i] -= factor * self.b[row];
            self.a[i][col] = 0.0;
            if self.b[i].abs() < EPS {
                self.b[i] = 0.0;
            }
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Reduced cost of column `j` under cost vector `costs`.
    fn reduced_cost(&self, costs: &[f64], j: usize) -> f64 {
        let mut rc = costs[j];
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = costs[bi];
            if cb != 0.0 {
                rc -= cb * self.a[i][j];
            }
        }
        rc
    }

    /// Objective value of the current basic solution under `costs`.
    fn objective(&self, costs: &[f64]) -> f64 {
        self.basis.iter().enumerate().map(|(i, &bi)| costs[bi] * self.b[i]).sum()
    }

    /// Run primal simplex iterations under `costs`, restricted to columns for
    /// which `allowed(j)` is true. Returns `Ok(())` at optimality.
    fn optimize(&mut self, costs: &[f64], allowed: impl Fn(usize) -> bool) -> Result<()> {
        loop {
            if self.pivots > MAX_PIVOTS {
                return Err(LpError::IterationLimit { iterations: self.pivots });
            }
            // Bland's rule: entering column = smallest index with negative
            // reduced cost.
            let entering = (0..self.cols)
                .filter(|&j| allowed(j))
                .find(|&j| self.reduced_cost(costs, j) < -EPS);
            let Some(col) = entering else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on the smallest basic column index.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.a.len() {
                let aij = self.a[i][col];
                if aij > EPS {
                    let ratio = self.b[i] / aij;
                    let better = match best {
                        None => true,
                        Some((bi, br)) => {
                            ratio < br - EPS
                                || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                        }
                    };
                    if better {
                        best = Some((i, ratio));
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }
}

/// Solve a validated problem. Called from [`LpProblem::solve`].
pub(crate) fn solve(problem: &LpProblem) -> Result<LpSolution> {
    let sf = StandardForm::from_problem(problem);
    let m = sf.num_rows();
    let n = sf.num_cols();

    // Columns: [structural + slack | artificials]. One artificial per row;
    // the initial basis is exactly the artificial columns.
    let total = n + m;
    let mut a = Vec::with_capacity(m);
    for (i, row) in sf.a.iter().enumerate() {
        let mut full = vec![0.0; total];
        full[..n].copy_from_slice(row);
        full[n + i] = 1.0;
        a.push(full);
    }
    let basis: Vec<usize> = (n..n + m).collect();
    let mut t = Tableau { a, b: sf.b.clone(), basis, cols: total, pivots: 0 };

    // ---------------- Phase 1: minimize the sum of artificials ----------------
    let mut phase1_costs = vec![0.0; total];
    for cost in phase1_costs.iter_mut().skip(n) {
        *cost = 1.0;
    }
    t.optimize(&phase1_costs, |_| true)?;
    let phase1_obj = t.objective(&phase1_costs);
    if phase1_obj > 1e-7 {
        return Err(LpError::Infeasible);
    }
    let phase1_pivots = t.pivots;

    // Drive any artificial still in the basis out of it (degenerate rows).
    for i in 0..m {
        if t.basis[i] >= n {
            if let Some(col) = (0..n).find(|&j| t.a[i][j].abs() > EPS) {
                t.pivot(i, col);
            }
            // If the whole row is zero the constraint was redundant; the
            // artificial stays basic at value zero, which is harmless as long
            // as it is never allowed to re-enter with a nonzero value. Since
            // its row is all zeros it cannot change any other variable.
        }
    }

    // ---------------- Phase 2: original objective ----------------
    let mut phase2_costs = sf.c.clone();
    phase2_costs.resize(total, 0.0);
    // Forbid artificial columns from (re-)entering.
    t.optimize(&phase2_costs, |j| j < n)?;

    // Extract the solution over standard-form columns.
    let mut y = vec![0.0; n];
    for (i, &bi) in t.basis.iter().enumerate() {
        if bi < n {
            y[bi] = t.b[i];
        }
    }
    let min_obj: f64 = sf.c.iter().zip(&y).map(|(c, v)| c * v).sum();
    let values = sf.recover(&y);
    let objective = sf.original_objective(min_obj);

    let stats = SolveStats { pivots: t.pivots, phase1_pivots, rows: m, cols: n };
    Ok(LpSolution::new(objective, values, stats))
}

#[cfg(test)]
mod tests {
    use crate::{LpError, LpProblem, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example)
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 3.0);
        lp.set_objective(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 2.0, f64::INFINITY);
        let y = lp.add_var("y", 3.0, f64::INFINITY);
        lp.set_objective(x, 2.0);
        lp.set_objective(y, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 2.0 * 7.0 + 3.0 * 3.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + 2y == 4, x <= 3
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 3.0);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.set_objective(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 3.5);
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 0.5);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 1.0);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn contradictory_constraints_are_infeasible() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_is_detected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bounded_variables_without_constraints() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", -2.0, 5.0);
        let y = lp.add_var("y", 1.0, 3.0);
        lp.set_objective(x, 2.0);
        lp.set_objective(y, -1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(x), 5.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective(), 9.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y, x in [-10, 10], y in [-5, 5], x + y >= -3
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x", -10.0, 10.0);
        let y = lp.add_var("y", -5.0, 5.0);
        lp.set_objective(x, 1.0);
        lp.set_objective(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, -3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), -3.0);
        assert!(lp.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate instance (multiple constraints active at the
        // optimum); Bland's rule must not cycle.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x1 = lp.add_var("x1", 0.0, f64::INFINITY);
        let x2 = lp.add_var("x2", 0.0, f64::INFINITY);
        let x3 = lp.add_var("x3", 0.0, f64::INFINITY);
        lp.set_objective(x1, 10.0);
        lp.set_objective(x2, -57.0);
        lp.set_objective(x3, -9.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], Relation::Le, 0.0);
        lp.add_constraint(&[(x1, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        // Known optimum of the Beale-style cycling example (restricted): 1.
        assert!(sol.objective() >= 1.0 - 1e-7);
        assert!(lp.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y == 2 listed twice; solution must still be found.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY);
        let y = lp.add_var("y", 0.0, f64::INFINITY);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 2.0);
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn zero_rhs_and_zero_objective() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 0.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 0.0);
        assert_close(sol.value(x), 0.0);
    }

    #[test]
    fn stats_are_populated() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x", 0.0, 4.0);
        lp.set_objective(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 2.0);
        let sol = lp.solve().unwrap();
        let stats = sol.stats();
        assert!(stats.pivots >= 1);
        assert!(stats.rows >= 1);
        assert!(stats.cols >= 1);
        assert!(stats.phase1_pivots <= stats.pivots);
    }

    #[test]
    fn lp3_shaped_signaling_program() {
        // The OSSP program LP (3) from the paper with Table 2 type 1 payoffs
        // and theta = 0.3, including the attacker-participation constraint
        // p0*Ua,c + q0*Ua,u >= 0 that the Theorem 3 proof treats as implicit
        // ("if not the case, the attacker will not attack initially"):
        //   max 100 p0 - 400 q0
        //   s.t. -2000 p1 + 400 q1 <= 0
        //        -2000 p0 + 400 q0 >= 0
        //        p1 + p0 = 0.3
        //        q1 + q0 = 0.7
        //        all in [0, 1]
        let (udc, udu, uac, uau) = (100.0, -400.0, -2000.0, 400.0);
        let theta = 0.3;
        let mut lp = LpProblem::new(Objective::Maximize);
        let p1 = lp.add_prob_var("p1");
        let q1 = lp.add_prob_var("q1");
        let p0 = lp.add_prob_var("p0");
        let q0 = lp.add_prob_var("q0");
        lp.set_objective(p0, udc);
        lp.set_objective(q0, udu);
        lp.add_constraint(&[(p1, uac), (q1, uau)], Relation::Le, 0.0);
        lp.add_constraint(&[(p0, uac), (q0, uau)], Relation::Ge, 0.0);
        lp.add_constraint(&[(p1, 1.0), (p0, 1.0)], Relation::Eq, theta);
        lp.add_constraint(&[(q1, 1.0), (q0, 1.0)], Relation::Eq, 1.0 - theta);
        let sol = lp.solve().unwrap();
        // Theorem 3 closed form: beta = 0.3*(-2000) + 0.7*400 = -320 <= 0,
        // so p0 = q0 = 0 and the auditor gets 0 (full deterrence).
        assert_close(sol.objective(), 0.0);
        assert_close(sol.value(p0), 0.0);
        assert_close(sol.value(q0), 0.0);
        assert_close(sol.value(p1), theta);
        assert_close(sol.value(q1), 1.0 - theta);
    }
}
