//! Error types for the LP solver.

use std::fmt;

/// Errors that can arise while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective can be improved without bound over the feasible region.
    Unbounded,
    /// The problem definition is malformed (e.g. a variable index out of
    /// range, a NaN coefficient, or inconsistent bounds).
    Malformed(String),
    /// The solver exceeded its iteration budget. With Bland's rule this
    /// indicates a numerically degenerate instance far outside the intended
    /// problem size; the instance dimensions are included so pathological
    /// programs can be identified from logs alone.
    IterationLimit {
        /// Number of pivots performed before giving up.
        iterations: usize,
        /// Number of equality rows of the standard-form instance.
        rows: usize,
        /// Number of columns of the standard-form instance (excluding
        /// artificials).
        cols: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::Malformed(msg) => write!(f, "malformed linear program: {msg}"),
            LpError::IterationLimit {
                iterations,
                rows,
                cols,
            } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} pivots \
                     on a {rows}x{cols} standard-form instance"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LpError::Unbounded.to_string(),
            "linear program is unbounded"
        );
        assert!(LpError::Malformed("bad var".into())
            .to_string()
            .contains("bad var"));
        let limit = LpError::IterationLimit {
            iterations: 42,
            rows: 6,
            cols: 9,
        };
        assert!(limit.to_string().contains("42"));
        assert!(limit.to_string().contains("6x9"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LpError::Infeasible, LpError::Infeasible);
        assert_ne!(LpError::Infeasible, LpError::Unbounded);
    }
}
