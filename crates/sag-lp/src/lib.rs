//! # sag-lp — a small, self-contained linear-programming solver
//!
//! The Signaling Audit Game (SAG) solves two families of linear programs on
//! every incoming alert:
//!
//! * **LP (2)** — the online Strong Stackelberg Equilibrium (SSE): one LP per
//!   candidate attacker best-response type, each with `|T|` budget-allocation
//!   variables and `|T| + 2` constraints.
//! * **LP (3)** — the Online Stackelberg Signaling Policy (OSSP): four joint
//!   signaling/auditing probabilities and three constraints.
//!
//! These programs are tiny but must be solved thousands of times per audit
//! cycle, online, with strict latency requirements (the paper reports ~0.02 s
//! per alert on a 2017 laptop, and the whole point of the mechanism is that
//! the warning pop-up is imperceptible to the user). Rather than pulling in a
//! heavyweight external solver, this crate implements a dense **two-phase
//! primal simplex** with Bland's anti-cycling rule, which is exact and
//! extremely fast at this problem size.
//!
//! Two kernels run that method: the blocked, cache-friendly
//! [`SimplexWorkspace`] (the production path — fixed-width chunked pricing
//! and elimination loops that stable `rustc` autovectorizes, plus optional
//! [`Pricing::Dantzig`] entering-variable selection with an automatic Bland
//! stall fallback) and the frozen scalar [`ReferenceWorkspace`] it replaced,
//! kept as a differential-testing oracle. Under the default
//! [`Pricing::Bland`] rule the two are **bitwise identical** — same pivot
//! sequence, same accumulation order, same result bits — which the
//! property suite in `tests/property.rs` enforces on randomized programs.
//!
//! ## Quick start
//!
//! ```
//! use sag_lp::{LpProblem, Objective, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x, y >= 0
//! let mut lp = LpProblem::new(Objective::Maximize);
//! let x = lp.add_var("x", 0.0, f64::INFINITY);
//! let y = lp.add_var("y", 0.0, f64::INFINITY);
//! lp.set_objective(x, 3.0);
//! lp.set_objective(y, 2.0);
//! lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective() - 12.0).abs() < 1e-9);
//! assert!((sol.value(x) - 4.0).abs() < 1e-9);
//! ```
//!
//! ## Scope and guarantees
//!
//! * Dense representation; intended for problems with at most a few hundred
//!   variables/constraints (the SAG uses ≤ 10 of each).
//! * Finite or infinite variable bounds, `≤ / ≥ / =` constraints,
//!   maximization or minimization.
//! * Detects infeasibility and unboundedness and reports them as typed errors.
//! * Deterministic: no randomness, no iteration-order dependence.

#![forbid(unsafe_code)]

mod error;
mod problem;
mod reference;
mod simplex;
mod solution;
mod standard;

pub use error::LpError;
pub use problem::{Constraint, LpProblem, Objective, Relation, VarId};
pub use reference::ReferenceWorkspace;
pub use simplex::{Pricing, SimplexWorkspace};
pub use solution::{LpSolution, SolveStats};
pub use standard::StandardForm;

/// Numerical tolerance used throughout the solver for feasibility and
/// optimality tests.
pub const EPS: f64 = 1e-9;

/// Result alias for fallible solver operations.
pub type Result<T> = std::result::Result<T, LpError>;
