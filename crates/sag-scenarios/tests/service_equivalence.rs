//! Multi-tenant concurrency equivalence: N tenants' owned sessions, driven
//! interleaved — round-robin through one driver loop and fanned out over
//! `sag-pool` worker threads — produce `CycleResult`s bitwise identical to
//! serial per-tenant replay, across the full scenario registry and both
//! general-purpose solver backends. This is the contract that makes the
//! `AuditService` front door safe to scale: concurrency and multiplexing
//! change wall-clock time, never results.

use sag_core::engine::EngineBuilder;
use sag_core::sse::SolverBackendKind;
use sag_core::CycleResult;
use sag_scenarios::{registry, run_scenario_service_with, run_scenario_sized_with, Scenario};
use sag_service::{AuditService, SessionHandle, TenantId};
use std::collections::HashMap;

const SEED: u64 = 2027;
const TENANTS: usize = 3;
const HISTORY_DAYS: u32 = 4;
const TEST_DAYS: u32 = 2;

/// Zero the wall-clock timing field so results can be compared exactly.
fn untimed(mut cycle: CycleResult) -> CycleResult {
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
    }
    cycle
}

/// Serial per-tenant reference: each tenant replayed alone, one shard, on
/// its own seed — the ground truth the concurrent paths must reproduce.
fn serial_reference(scenario: &dyn Scenario, backend: SolverBackendKind) -> Vec<Vec<CycleResult>> {
    (0..TENANTS)
        .map(|t| {
            run_scenario_sized_with(
                scenario,
                SEED + t as u64,
                1,
                HISTORY_DAYS,
                TEST_DAYS,
                |config| config.backend = backend,
            )
            .expect("serial replay")
            .cycles
            .into_iter()
            .map(untimed)
            .collect()
        })
        .collect()
}

/// The pool-threaded leg: tenants fanned out over the service's `sag-pool`
/// workers via `replay_concurrent`.
fn assert_pool_equivalence(scenario: &dyn Scenario, backend: SolverBackendKind) {
    let reference = serial_reference(scenario, backend);
    let service = run_scenario_service_with(
        scenario,
        SEED,
        TENANTS,
        4,
        HISTORY_DAYS,
        TEST_DAYS,
        |config| config.backend = backend,
    )
    .expect("service replay");
    assert_eq!(service.tenants, TENANTS);
    assert_eq!(service.workers, 4);
    let concurrent: Vec<Vec<CycleResult>> = service
        .cycles
        .into_iter()
        .map(|tenant| tenant.into_iter().map(untimed).collect())
        .collect();
    assert_eq!(
        concurrent,
        reference,
        "{} [{backend:?}]: pool-threaded service replay diverged from serial",
        scenario.name()
    );
}

/// The single-loop leg: owned handles for all tenants held in one map and
/// fed strictly round-robin, one alert per tenant per turn — the maximally
/// interleaved schedule a multiplexing driver loop can produce.
fn assert_interleaved_equivalence(scenario: &dyn Scenario, backend: SolverBackendKind) {
    let reference = serial_reference(scenario, backend);

    let mut config = scenario.engine_config();
    config.backend = backend;
    let tenant_ids: Vec<TenantId> = (0..TENANTS)
        .map(|t| TenantId::new(format!("{}-t{t}", scenario.name())))
        .collect();
    let mut builder = AuditService::builder().workers(0);
    for id in &tenant_ids {
        builder = builder.tenant(id.clone(), EngineBuilder::from_config(config.clone()));
    }
    let service = builder.build().expect("tenant configs are valid");

    let logs: Vec<sag_sim::AlertLog> = (0..TENANTS)
        .map(|t| {
            sag_sim::AlertLog::new(
                scenario.generate_days(SEED + t as u64, HISTORY_DAYS + TEST_DAYS),
            )
        })
        .collect();
    let groups: Vec<Vec<(&[sag_sim::DayLog], &sag_sim::DayLog)>> = logs
        .iter()
        .map(|log| log.rolling_groups(HISTORY_DAYS as usize))
        .collect();
    let days_per_tenant = groups[0].len();

    let mut results: Vec<Vec<CycleResult>> = vec![Vec::new(); TENANTS];
    // `day_index` picks the same rolling group out of every tenant's log,
    // so the range loop is the honest shape here.
    #[allow(clippy::needless_range_loop)]
    for day_index in 0..days_per_tenant {
        // Open every tenant's cycle for this day, park the owned handles in
        // a map, and round-robin one alert at a time across all of them.
        let mut open: HashMap<usize, SessionHandle> = HashMap::new();
        let mut feeds: Vec<std::slice::Iter<'_, sag_sim::Alert>> = Vec::new();
        for (t, id) in tenant_ids.iter().enumerate() {
            let (history, test_day) = groups[t][day_index];
            let mut handle = service
                .open_day_with_history(id, history, scenario.budget_for_day(test_day.day()))
                .expect("session opens");
            handle.set_day(test_day.day());
            open.insert(t, handle);
            feeds.push(test_day.alerts().iter());
        }
        loop {
            let mut progressed = false;
            for (t, feed) in feeds.iter_mut().enumerate() {
                if let Some(alert) = feed.next() {
                    open.get_mut(&t)
                        .expect("handle parked")
                        .push_alert(alert)
                        .expect("alert processes");
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for (t, tenant_results) in results.iter_mut().enumerate() {
            let handle = open.remove(&t).expect("handle parked");
            tenant_results.push(untimed(handle.finish()));
        }
    }

    assert_eq!(
        results,
        reference,
        "{} [{backend:?}]: interleaved driver loop diverged from serial",
        scenario.name()
    );
}

#[test]
fn pool_threaded_service_replay_matches_serial_on_the_auto_backend() {
    for scenario in registry() {
        assert_pool_equivalence(scenario.as_ref(), SolverBackendKind::Auto);
    }
}

#[test]
fn pool_threaded_service_replay_matches_serial_on_the_lp_backend() {
    for scenario in registry() {
        assert_pool_equivalence(scenario.as_ref(), SolverBackendKind::SimplexLp);
    }
}

#[test]
fn interleaved_owned_sessions_match_serial_on_the_auto_backend() {
    for scenario in registry() {
        assert_interleaved_equivalence(scenario.as_ref(), SolverBackendKind::Auto);
    }
}

#[test]
fn interleaved_owned_sessions_match_serial_on_the_lp_backend() {
    for scenario in registry() {
        assert_interleaved_equivalence(scenario.as_ref(), SolverBackendKind::SimplexLp);
    }
}
