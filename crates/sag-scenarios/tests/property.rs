//! Property tests quantifying over the whole scenario registry: every
//! registered scenario must generate well-formed logs and a valid game, for
//! any seed.

use proptest::prelude::*;
use sag_scenarios::registry;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every registered scenario generates valid logs: the requested number
    /// of days, alerts only of catalogued types, chronologically sorted,
    /// tagged with the right day index, and (for these populations) at least
    /// one alert per day.
    #[test]
    fn every_scenario_generates_valid_logs(seed in 0u64..1_000_000) {
        for scenario in registry() {
            let config = scenario.engine_config();
            prop_assert!(config.game.validate().is_ok(), "{}", scenario.name());
            let num_types = config.game.num_types();
            let num_days = scenario.history_days() + scenario.test_days();
            prop_assert!(scenario.test_days() > 0, "{}", scenario.name());

            let days = scenario.generate_days(seed, num_days);
            prop_assert_eq!(days.len() as u32, num_days, "{}", scenario.name());
            for (index, day) in days.iter().enumerate() {
                prop_assert_eq!(day.day(), index as u32, "{}", scenario.name());
                prop_assert!(
                    !day.alerts().is_empty(),
                    "{}: day {} is empty", scenario.name(), index
                );
                for pair in day.alerts().windows(2) {
                    prop_assert!(pair[0].time <= pair[1].time, "{}", scenario.name());
                }
                for alert in day.alerts() {
                    prop_assert_eq!(alert.day, index as u32, "{}", scenario.name());
                    prop_assert!(
                        alert.type_id.index() < num_types,
                        "{}: type {} out of range {}",
                        scenario.name(), alert.type_id.index(), num_types
                    );
                }
            }
        }
    }

    /// Budget schedules always produce finite, nonnegative cycle budgets.
    #[test]
    fn budget_schedules_stay_well_formed(day in 0u32..10_000) {
        for scenario in registry() {
            if let Some(budget) = scenario.budget_for_day(day) {
                prop_assert!(
                    budget.is_finite() && budget >= 0.0,
                    "{}: day {} budget {}", scenario.name(), day, budget
                );
            }
        }
    }

    /// Log generation is deterministic in the seed — the contract the
    /// sharded replay driver and the benchmarks rely on.
    #[test]
    fn generation_is_seed_deterministic(seed in 0u64..1_000_000) {
        for scenario in registry() {
            let a = scenario.generate_days(seed, 3);
            let b = scenario.generate_days(seed, 3);
            for (da, db) in a.iter().zip(&b) {
                prop_assert_eq!(da.alerts(), db.alerts(), "{}", scenario.name());
            }
        }
    }
}
