//! ε-approximate mode equivalence and certificate checks.
//!
//! The contract of `EngineConfig::epsilon`:
//!
//! * **ε = 0 is the exact mode, bitwise** — results *and* solver-work
//!   counters are identical to a replay that never heard of ε, for every
//!   registered scenario, multiple seeds and both general-purpose backends
//!   (the ε guard in the pruned path must not fire at all).
//! * **ε > 0 certifies its loss** — the per-day
//!   `CycleResult::certified_eps_loss` is nonnegative and bounded by
//!   ε × solves, and the mode actually skips candidate LPs on workloads
//!   with closely separated candidates.
//!
//! The XL (64/128-type) games are exercised at the solver level: replaying
//! their full alert streams in a debug test would dominate the suite's
//! runtime, and the ε branch lives entirely inside `SseSolver`.

use sag_core::engine::{AuditCycleEngine, EngineConfig, ReplayJob};
use sag_core::model::GameConfig;
use sag_core::sse::{SolverBackendKind, SseCache, SseInput, SseSolver};
use sag_core::CycleResult;
use sag_scenarios::library::{ContinentalSprawl, GlobalMesh};
use sag_scenarios::{registry, Scenario};
use sag_sim::AlertLog;

/// Strip wall-clock timing, the only field ε = 0 may legitimately change.
/// Everything else — outcomes, schemes, budgets, *and* the solver-work
/// counters — must stay bitwise identical.
fn untimed(mut cycle: CycleResult) -> CycleResult {
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
    }
    cycle
}

fn replay(
    scenario: &dyn Scenario,
    backend: SolverBackendKind,
    epsilon: Option<f64>,
    seed: u64,
    history_days: u32,
    days: u32,
) -> Vec<CycleResult> {
    let mut config: EngineConfig = scenario.engine_config();
    config.backend = backend;
    if let Some(epsilon) = epsilon {
        config.epsilon = epsilon;
    }
    let engine = AuditCycleEngine::new(config).expect("scenario engine");
    let log = AlertLog::new(scenario.generate_days(seed, days));
    let groups = log.rolling_groups(history_days as usize);
    let jobs: Vec<ReplayJob<'_>> = groups
        .iter()
        .map(|&(history, test_day)| ReplayJob {
            history,
            test_day,
            budget: scenario.budget_for_day(test_day.day()),
        })
        .collect();
    engine
        .replay_sharded(&jobs, 1)
        .expect("scenario replays")
        .into_iter()
        .map(untimed)
        .collect()
}

/// Every registered scenario, both backends: a replay explicitly
/// configured with ε = 0 equals one with the untouched default config,
/// bitwise, down to the per-alert stats and per-day totals.
#[test]
fn zero_epsilon_replays_equal_exact_across_the_whole_registry() {
    for scenario in registry() {
        let many_types = scenario.engine_config().game.num_types() >= 14;
        let (history_days, days) = if many_types { (3, 4) } else { (4, 6) };
        for backend in [SolverBackendKind::Auto, SolverBackendKind::SimplexLp] {
            let exact = replay(scenario.as_ref(), backend, None, 2019, history_days, days);
            let approx = replay(
                scenario.as_ref(),
                backend,
                Some(0.0),
                2019,
                history_days,
                days,
            );
            assert_eq!(
                exact,
                approx,
                "{} backend {backend:?}: ε = 0 diverged from the exact mode",
                scenario.name()
            );
            assert!(exact
                .iter()
                .all(|c| c.sse_totals.eps_skipped_lps == 0 && c.certified_eps_loss == 0.0));
        }
    }
}

/// ε > 0 on a registered federated workload: the mode really skips LPs and
/// its per-day certificate respects the ε × solves bound.
#[test]
fn positive_epsilon_skips_lps_and_certifies_the_loss_per_day() {
    let scenario = sag_scenarios::find_scenario("metro-grid").expect("registered");
    let epsilon = 25.0;
    let cycles = replay(
        scenario.as_ref(),
        SolverBackendKind::Auto,
        Some(epsilon),
        2019,
        3,
        4,
    );
    let mut skipped = 0u64;
    for c in &cycles {
        assert!(
            c.certified_eps_loss >= 0.0,
            "day {}: negative certified loss {}",
            c.day,
            c.certified_eps_loss
        );
        assert!(
            c.certified_eps_loss <= epsilon * c.sse_totals.solves as f64 + 1e-9,
            "day {}: certified loss {} exceeds ε × solves",
            c.day,
            c.certified_eps_loss
        );
        skipped += c.sse_totals.eps_skipped_lps;
    }
    assert!(
        skipped > 0,
        "ε = {epsilon} skipped no candidate LPs on metro-grid"
    );
}

/// Drive an SseSolver trajectory over a game, mimicking a drifting day:
/// budget and estimates shrink step over step.
fn solver_trajectory(game: &GameConfig, solver: &SseSolver, steps: usize) -> (Vec<u64>, SseCache) {
    let mut estimates: Vec<f64> = game.catalog.types().iter().map(|t| t.daily_mean).collect();
    let mut budget = game.budget;
    let mut cache = SseCache::new();
    let mut winner_bits = Vec::new();
    for _ in 0..steps {
        let input = SseInput {
            payoffs: &game.payoffs,
            audit_costs: &game.audit_costs,
            future_estimates: &estimates,
            budget,
        };
        let solution = solver.solve_cached(&input, &mut cache).unwrap();
        winner_bits.push(u64::from(solution.best_response.0));
        winner_bits.push(solution.auditor_utility.to_bits());
        winner_bits.push(solution.attacker_utility.to_bits());
        for v in solution.coverage.iter().chain(&solution.budget_split) {
            winner_bits.push(v.to_bits());
        }
        budget = (budget - 0.6).max(0.0);
        for e in &mut estimates {
            *e = (*e - 0.8).max(0.0);
        }
    }
    (winner_bits, cache)
}

/// The XL 64- and 128-type games: ε = 0 stays bitwise equal to the exact
/// solver on a drifting trajectory, and a generous ε > 0 both skips LPs and
/// keeps its accumulated certificate within ε × solves.
#[test]
fn xl_games_honour_the_epsilon_contract_at_solver_level() {
    for (name, game) in [
        ("continental-sprawl", ContinentalSprawl::game()),
        ("global-mesh", GlobalMesh::game()),
    ] {
        game.validate().expect("XL game validates");
        let steps = 6;
        let (exact_bits, exact_cache) = solver_trajectory(&game, &SseSolver::new(), steps);
        let (zero_bits, zero_cache) =
            solver_trajectory(&game, &SseSolver::with_options(true, 0.0), steps);
        assert_eq!(exact_bits, zero_bits, "{name}: ε = 0 diverged");
        assert_eq!(exact_cache.totals, zero_cache.totals, "{name}: counters");
        assert_eq!(zero_cache.certified_eps_loss(), 0.0);

        let epsilon = 50.0;
        let (_, approx_cache) =
            solver_trajectory(&game, &SseSolver::with_options(true, epsilon), steps);
        assert!(
            approx_cache.totals.eps_skipped_lps > 0,
            "{name}: ε = {epsilon} skipped nothing on a {}-type game",
            game.num_types()
        );
        let loss = approx_cache.certified_eps_loss();
        assert!(
            loss >= 0.0 && loss <= epsilon * approx_cache.totals.solves as f64,
            "{name}: certified loss {loss} outside [0, ε × solves]"
        );
    }
}
