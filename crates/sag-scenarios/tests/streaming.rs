//! Streaming equivalence: a `DaySession` fed alert-by-alert produces
//! bitwise-identical `CycleResult`s to the batch `run_day` wrapper and to
//! `replay_sharded` at every shard count — across the full scenario
//! registry and for both general-purpose solver backends. This is the
//! contract that lets ingest loops, batch replays and sharded benchmarks
//! share one engine without ever diverging on results.

use sag_core::engine::{AuditCycleEngine, EngineConfig, ReplayJob};
use sag_core::sse::SolverBackendKind;
use sag_core::CycleResult;
use sag_scenarios::{registry, Scenario};
use sag_sim::AlertLog;

/// Zero the wall-clock timing field so results can be compared exactly.
fn untimed(mut cycle: CycleResult) -> CycleResult {
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
    }
    cycle
}

/// Stream every rolling group of `scenario` through a session and check the
/// results against the batch wrappers, bitwise.
fn assert_streaming_equivalence(
    scenario: &dyn Scenario,
    backend: SolverBackendKind,
    seed: u64,
    history_days: u32,
    days: u32,
) {
    let mut config: EngineConfig = scenario.engine_config();
    config.backend = backend;
    let engine = AuditCycleEngine::new(config).expect("scenario engine");
    let log = AlertLog::new(scenario.generate_days(seed, days));
    let groups = log.rolling_groups(history_days as usize);
    assert!(
        groups.len() >= 2,
        "need several days to make the test count"
    );

    // The streaming reference: one session per day, one push per alert.
    let mut streamed: Vec<CycleResult> = Vec::new();
    for &(history, test_day) in &groups {
        let mut session = engine
            .open_day(history, scenario.budget_for_day(test_day.day()))
            .expect("session opens");
        session.set_day(test_day.day());
        for alert in test_day.alerts() {
            session.push_alert(alert).expect("alert processes");
        }
        streamed.push(untimed(session.finish()));
    }

    // Batch leg 1: run_day per group (flat-budget scenarios only — run_day
    // has no budget override).
    let name = scenario.name();
    if groups
        .iter()
        .all(|&(_, t)| scenario.budget_for_day(t.day()).is_none())
    {
        for (&(history, test_day), reference) in groups.iter().zip(&streamed) {
            let batch = untimed(engine.run_day(history, test_day).expect("day replays"));
            assert_eq!(
                &batch,
                reference,
                "{name} [{backend:?}]: run_day disagrees with streaming on day {}",
                test_day.day()
            );
        }
    }

    // Batch leg 2: replay_sharded at several shard counts.
    let jobs: Vec<ReplayJob<'_>> = groups
        .iter()
        .map(|&(history, test_day)| ReplayJob {
            history,
            test_day,
            budget: scenario.budget_for_day(test_day.day()),
        })
        .collect();
    for shards in [1, 2, jobs.len() * 2] {
        let sharded: Vec<CycleResult> = engine
            .replay_sharded(&jobs, shards)
            .expect("sharded replays")
            .into_iter()
            .map(untimed)
            .collect();
        assert_eq!(
            streamed, sharded,
            "{name} [{backend:?}]: {shards} shard(s) disagree with streaming"
        );
    }
}

#[test]
fn every_registered_scenario_streams_identically_on_the_auto_backend() {
    for scenario in registry() {
        assert_streaming_equivalence(scenario.as_ref(), SolverBackendKind::Auto, 2026, 4, 7);
    }
}

#[test]
fn every_registered_scenario_streams_identically_on_the_lp_backend() {
    for scenario in registry() {
        assert_streaming_equivalence(scenario.as_ref(), SolverBackendKind::SimplexLp, 2026, 4, 7);
    }
}
