//! The cluster's core invariant, proven registry-wide: a tenant fleet
//! consistent-hashed across 1/2/4/8 `AuditService` shards produces
//! per-tenant `CycleResult`s bitwise identical to the unsharded service —
//! with the WAL off and on — and a single shard's crash + shard-local
//! `recover_shard` leaves every result intact while the untouched shards
//! keep serving throughout. Shard placement itself is property-tested:
//! deterministic, total, and stable across router instances, because the
//! WAL directory layout (`shard-<i>`) bakes placement into recovery.

use proptest::prelude::*;
use sag_cluster::{shard_wal_dir, ClusterService, ShardRouter};
use sag_core::CycleResult;
use sag_scenarios::{
    registry, tenant_fleet_cluster_parts, tenant_fleet_parts, FleetTenant, Scenario,
};
use sag_service::{DurabilityOptions, Request, Response, SessionId, TenantId};

const SEED: u64 = 2028;
const TENANTS: usize = 5;
const HISTORY_DAYS: u32 = 3;
const TEST_DAYS: u32 = 2;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Zero the wall-clock timing field so results can be compared exactly.
fn untimed(mut cycle: CycleResult) -> CycleResult {
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
    }
    cycle
}

/// Open one tenant-day on the cluster and return its cluster session id.
fn open_day(
    cluster: &mut ClusterService,
    scenario: &dyn Scenario,
    tenant: &TenantId,
    day: u32,
) -> SessionId {
    match cluster
        .handle(Request::OpenDay {
            tenant: tenant.clone(),
            budget: scenario.budget_for_day(day),
            day: Some(day),
        })
        .expect("day opens")
    {
        Response::DayOpened { session, .. } => session,
        other => panic!("unexpected response {other:?}"),
    }
}

fn finish_day(cluster: &mut ClusterService, session: SessionId) -> CycleResult {
    match cluster
        .handle(Request::FinishDay { session })
        .expect("day closes")
    {
        Response::DayClosed { result, .. } => untimed(result),
        other => panic!("unexpected response {other:?}"),
    }
}

/// The unsharded ground truth: the same fleet on one `AuditService`,
/// each tenant's test days driven straight through `handle`.
fn unsharded_reference(scenario: &dyn Scenario) -> Vec<Vec<CycleResult>> {
    let (builder, fleet) = tenant_fleet_parts(scenario, SEED, TENANTS, HISTORY_DAYS, TEST_DAYS);
    let mut service = builder.workers(0).build().expect("control build");
    fleet
        .iter()
        .map(|tenant| {
            tenant
                .test_days
                .iter()
                .map(|day| {
                    let Ok(Response::DayOpened { session, .. }) =
                        service.handle(Request::OpenDay {
                            tenant: tenant.id.clone(),
                            budget: scenario.budget_for_day(day.day()),
                            day: Some(day.day()),
                        })
                    else {
                        panic!("control OpenDay failed")
                    };
                    for alert in day.alerts() {
                        service
                            .handle(Request::PushAlert {
                                session,
                                alert: *alert,
                            })
                            .expect("control alert processes");
                    }
                    match service.handle(Request::FinishDay { session }) {
                        Ok(Response::DayClosed { result, .. }) => untimed(result),
                        other => panic!("control FinishDay answered {other:?}"),
                    }
                })
                .collect()
        })
        .collect()
}

/// Drive the whole fleet through the cluster *interleaved* — all tenants'
/// sessions for a day open at once, one alert per tenant per turn — the
/// maximally multiplexed schedule, crossing shard boundaries every turn.
fn drive_cluster_interleaved(
    cluster: &mut ClusterService,
    scenario: &dyn Scenario,
    fleet: &[FleetTenant],
) -> Vec<Vec<CycleResult>> {
    let mut results: Vec<Vec<CycleResult>> = vec![Vec::new(); fleet.len()];
    for day_index in 0..TEST_DAYS as usize {
        let mut sessions = Vec::with_capacity(fleet.len());
        let mut feeds = Vec::with_capacity(fleet.len());
        for tenant in fleet {
            let day = &tenant.test_days[day_index];
            sessions.push(open_day(cluster, scenario, &tenant.id, day.day()));
            feeds.push(day.alerts().iter());
        }
        loop {
            let mut progressed = false;
            for (t, feed) in feeds.iter_mut().enumerate() {
                if let Some(alert) = feed.next() {
                    cluster
                        .handle(Request::PushAlert {
                            session: sessions[t],
                            alert: *alert,
                        })
                        .expect("alert processes");
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for (t, tenant_results) in results.iter_mut().enumerate() {
            tenant_results.push(finish_day(cluster, sessions[t]));
        }
    }
    results
}

fn assert_cluster_equivalence(scenario: &dyn Scenario, wal_dir: Option<&std::path::Path>) {
    let reference = unsharded_reference(scenario);
    for shards in SHARD_COUNTS {
        let (builder, fleet) =
            tenant_fleet_cluster_parts(scenario, SEED, TENANTS, HISTORY_DAYS, TEST_DAYS, shards);
        let builder = builder.workers(0).counters();
        let builder = match wal_dir {
            Some(dir) => {
                let dir = dir.join(format!("{}-s{shards}", scenario.name()));
                let _ = std::fs::remove_dir_all(&dir);
                builder.durable_with(dir, DurabilityOptions::no_fsync())
            }
            None => builder,
        };
        let mut cluster = builder.build().expect("cluster builds");
        assert_eq!(cluster.num_shards(), shards);
        assert_eq!(cluster.num_tenants(), TENANTS);
        // Every tenant sits on exactly one shard, and it is the hashed one.
        for tenant in &fleet {
            let owner = cluster.shard_for(&tenant.id);
            let hosts = (0..shards)
                .filter(|&s| cluster.shard(s).tenants().any(|t| *t == tenant.id))
                .collect::<Vec<_>>();
            assert_eq!(hosts, vec![owner], "{} misplaced", tenant.id);
        }

        let results = drive_cluster_interleaved(&mut cluster, scenario, &fleet);
        assert_eq!(
            results,
            reference,
            "{} [wal={}]: {shards}-shard cluster diverged from the unsharded service",
            scenario.name(),
            wal_dir.is_some(),
        );
        // Satellite invariant: the quiescent counter identity must hold on
        // the *aggregated* snapshot, not just per shard.
        let snapshot = cluster.counters_snapshot().expect("counters installed");
        assert!(
            snapshot.quiescent_identity_holds(),
            "{}: cluster-wide identity violated at {shards} shards: {snapshot:?}",
            scenario.name()
        );
        let driven: u64 = fleet
            .iter()
            .flat_map(|t| t.test_days.iter())
            .map(|d| d.len() as u64 + 2)
            .sum();
        assert_eq!(snapshot.requests, driven);
    }
}

#[test]
fn sharded_results_match_the_unsharded_service_registry_wide() {
    for scenario in registry() {
        assert_cluster_equivalence(scenario.as_ref(), None);
    }
}

#[test]
fn sharded_results_match_the_unsharded_service_with_the_wal_on() {
    let root = std::env::temp_dir().join(format!(
        "sag_cluster_equivalence_{}_{SEED}",
        std::process::id()
    ));
    for scenario in registry() {
        assert_cluster_equivalence(scenario.as_ref(), Some(&root));
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Crash one shard mid-day, recover it shard-locally, and require (a) the
/// untouched shards served throughout without a hiccup and (b) every
/// tenant's results — victims included — bitwise match the unsharded
/// control.
fn assert_single_shard_crash_recovery(scenario: &dyn Scenario, root: &std::path::Path) {
    const SHARDS: usize = 4;
    let reference = unsharded_reference(scenario);
    let dir = root.join(scenario.name());
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions::no_fsync();

    let parts = || {
        let (builder, fleet) =
            tenant_fleet_cluster_parts(scenario, SEED, TENANTS, HISTORY_DAYS, TEST_DAYS, SHARDS);
        (
            builder.workers(0).counters().durable_with(&dir, options),
            fleet,
        )
    };
    let (builder, fleet) = parts();
    let mut cluster = builder.build().expect("durable cluster builds");
    let victim_shard = cluster.shard_for(&fleet[0].id);

    // Day 0 runs to completion everywhere.
    let mut results: Vec<Vec<CycleResult>> = vec![Vec::new(); fleet.len()];
    let mut sessions = Vec::with_capacity(fleet.len());
    for tenant in &fleet {
        let day = &tenant.test_days[0];
        let session = open_day(&mut cluster, scenario, &tenant.id, day.day());
        for alert in day.alerts() {
            cluster
                .handle(Request::PushAlert {
                    session,
                    alert: *alert,
                })
                .expect("day-0 alert processes");
        }
        sessions.push(session);
    }
    for (t, tenant_results) in results.iter_mut().enumerate() {
        tenant_results.push(finish_day(&mut cluster, sessions[t]));
    }

    // Day 1: everyone opens, everyone gets half their alerts in…
    let mut sessions = Vec::with_capacity(fleet.len());
    let mut resumed_at = Vec::with_capacity(fleet.len());
    for tenant in &fleet {
        let day = &tenant.test_days[1];
        let session = open_day(&mut cluster, scenario, &tenant.id, day.day());
        let half = day.len() / 2;
        for alert in &day.alerts()[..half] {
            cluster
                .handle(Request::PushAlert {
                    session,
                    alert: *alert,
                })
                .expect("pre-crash alert processes");
        }
        sessions.push(session);
        resumed_at.push(half);
    }

    // …then the victim shard's process dies. Only its WAL subtree — which
    // must exist and sit exactly where the layout says — survives; every
    // other shard's in-memory state is never touched.
    assert!(
        shard_wal_dir(&dir, victim_shard).is_dir(),
        "{}: shard {victim_shard} has no WAL subtree",
        scenario.name()
    );
    let (recovery_builder, _) = parts();
    let recovered = recovery_builder
        .recover_shard(victim_shard)
        .expect("shard-local recovery");
    let dead = cluster.replace_shard(victim_shard, recovered);
    drop(dead);

    // The recovered shard holds exactly its own mid-day sessions, with
    // every acknowledged alert replayed.
    for (t, tenant) in fleet.iter().enumerate() {
        if cluster.shard_for(&tenant.id) != victim_shard {
            continue;
        }
        let local = cluster.router().to_local_session(sessions[t]);
        let session = cluster
            .shard(victim_shard)
            .session(local)
            .expect("victim session recovered");
        assert_eq!(
            session.alerts_processed(),
            resumed_at[t],
            "{}: {} lost acknowledged alerts in recovery",
            scenario.name(),
            tenant.id
        );
    }

    // Untouched shards never stall: finish every tenant's day through the
    // same cluster session ids, victims resuming where the WAL left them.
    for (t, tenant) in fleet.iter().enumerate() {
        let day = &tenant.test_days[1];
        for alert in &day.alerts()[resumed_at[t]..] {
            cluster
                .handle(Request::PushAlert {
                    session: sessions[t],
                    alert: *alert,
                })
                .expect("post-recovery alert processes");
        }
    }
    for (t, tenant_results) in results.iter_mut().enumerate() {
        tenant_results.push(finish_day(&mut cluster, sessions[t]));
    }

    assert_eq!(
        results,
        reference,
        "{}: results diverged after crashing shard {victim_shard} of {SHARDS}",
        scenario.name()
    );
    let snapshot = cluster.counters_snapshot().expect("counters installed");
    assert!(
        snapshot.quiescent_identity_holds(),
        "{}: post-recovery cluster identity violated: {snapshot:?}",
        scenario.name()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_shard_crash_recovers_locally_while_others_keep_serving() {
    let root =
        std::env::temp_dir().join(format!("sag_cluster_crash_{}_{SEED}", std::process::id()));
    for scenario in registry() {
        assert_single_shard_crash_recovery(scenario.as_ref(), &root);
    }
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shard assignment is deterministic (same tenant, same shard — across
    /// router instances, because placement is baked into the WAL layout),
    /// total (every tenant lands in range, for any shard count), and the
    /// session-id bijection round-trips on every shard.
    #[test]
    fn shard_assignment_is_deterministic_and_total(seed in 0u64..1_000_000, shards in 1u64..17) {
        let shards = shards as usize;
        let router = ShardRouter::new(shards);
        // Synthetic ids plus every registry fleet's real tenant names.
        let mut names: Vec<String> = (0..8).map(|i| format!("tenant-{seed}-{i}")).collect();
        for scenario in registry() {
            for t in 0..TENANTS {
                names.push(format!("{}-t{t}", scenario.name()));
            }
        }
        for name in names {
            let tenant = TenantId::new(name.clone());
            let shard = router.shard_for(&tenant);
            prop_assert!(shard < shards, "{name} out of range: {shard} >= {shards}");
            prop_assert_eq!(shard, router.shard_for(&tenant));
            prop_assert_eq!(shard, ShardRouter::new(shards).shard_for(&tenant));
            // The id bijection round-trips for an arbitrary local id on the
            // owning shard, and the encoded shard is what routes it back.
            let local = SessionId::from_raw(seed % 10_000);
            let cluster = router.to_cluster_session(local, shard);
            prop_assert_eq!(router.to_local_session(cluster), local);
            prop_assert_eq!(router.shard_for_session(cluster), shard);
        }
    }

    /// Placement is balanced enough to be useful: over many synthetic
    /// tenants no shard is empty and none hoards more than three quarters
    /// of the fleet (for shard counts a deployment would actually run).
    #[test]
    fn shard_assignment_spreads_tenants(seed in 0u64..1_000_000) {
        for shards in [2usize, 4, 8] {
            let router = ShardRouter::new(shards);
            let mut per_shard = vec![0usize; shards];
            for i in 0..128u64 {
                let tenant = TenantId::new(format!("t-{seed}-{i}"));
                per_shard[router.shard_for(&tenant)] += 1;
            }
            for (shard, &count) in per_shard.iter().enumerate() {
                prop_assert!(count > 0, "shard {shard}/{shards} got no tenants");
                prop_assert!(count <= 96, "shard {shard}/{shards} hoards {count}/128");
            }
        }
    }
}
