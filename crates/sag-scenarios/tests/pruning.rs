//! Pruned-vs-exhaustive equivalence across the whole scenario registry:
//! replaying any registered workload with incremental candidate pruning
//! enabled produces **bitwise-identical** winners, coverage, budget splits
//! and utilities to the exhaustive multiple-LP reference — for every
//! scenario, multiple seeds and both general-purpose solver backends. Only
//! the solver-work counters (LP counts, pivots, pruning skips) may differ.
//!
//! This is the contract that lets the engine default to pruning: it is a
//! pure work optimization, never a behaviour change.

use sag_core::engine::{AuditCycleEngine, EngineConfig, ReplayJob};
use sag_core::sse::SolverBackendKind;
use sag_core::CycleResult;
use sag_scenarios::{registry, Scenario};
use sag_sim::AlertLog;

/// Strip the fields equivalence deliberately excludes: wall-clock timing
/// and the solver-work counters (pruning exists precisely to change those).
fn comparable(mut cycle: CycleResult) -> CycleResult {
    cycle.sse_totals = Default::default();
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
        o.sse_stats = Default::default();
    }
    cycle
}

fn replay(
    scenario: &dyn Scenario,
    backend: SolverBackendKind,
    pruning: bool,
    seed: u64,
    history_days: u32,
    days: u32,
) -> Vec<CycleResult> {
    let mut config: EngineConfig = scenario.engine_config();
    config.backend = backend;
    config.pruning = pruning;
    let engine = AuditCycleEngine::new(config).expect("scenario engine");
    let log = AlertLog::new(scenario.generate_days(seed, days));
    let groups = log.rolling_groups(history_days as usize);
    let jobs: Vec<ReplayJob<'_>> = groups
        .iter()
        .map(|&(history, test_day)| ReplayJob {
            history,
            test_day,
            budget: scenario.budget_for_day(test_day.day()),
        })
        .collect();
    engine
        .replay_sharded(&jobs, 1)
        .expect("scenario replays")
        .into_iter()
        .map(comparable)
        .collect()
}

fn assert_pruning_equivalence(scenario: &dyn Scenario, seed: u64, history_days: u32, days: u32) {
    for backend in [SolverBackendKind::Auto, SolverBackendKind::SimplexLp] {
        let pruned = replay(scenario, backend, true, seed, history_days, days);
        let exhaustive = replay(scenario, backend, false, seed, history_days, days);
        assert_eq!(
            pruned.len(),
            exhaustive.len(),
            "{} seed {seed} backend {backend:?}",
            scenario.name()
        );
        // PartialEq over every f64 field of every outcome (winner type,
        // coverage, utilities, budgets, schemes): bitwise-identical or bust.
        assert_eq!(
            pruned,
            exhaustive,
            "{} seed {seed} backend {backend:?}: pruning changed results",
            scenario.name()
        );
    }
}

/// Every registered scenario, two seeds, both backends. Federated
/// scenarios (≥ 14 types, the expensive exhaustive arm) run a slightly
/// smaller layout so the debug-mode suite stays quick; they still cover
/// several hundred alerts over multiple days each.
#[test]
fn pruning_is_result_identical_across_the_whole_registry() {
    for scenario in registry() {
        let many_types = scenario.engine_config().game.num_types() >= 14;
        let (history_days, days) = if many_types { (3, 5) } else { (4, 7) };
        for seed in [2019, 7] {
            assert_pruning_equivalence(scenario.as_ref(), seed, history_days, days);
        }
    }
}

/// The pruned replay must actually prune on multi-type workloads — an
/// accidental "always fall back to the exhaustive path" would pass the
/// equivalence test while silently losing the speedup.
#[test]
fn pruning_actually_skips_most_candidate_lps() {
    for name in ["paper-baseline", "multi-site", "metro-grid"] {
        let scenario = sag_scenarios::find_scenario(name).expect("registered");
        let engine = AuditCycleEngine::new(scenario.engine_config()).expect("engine");
        let log = AlertLog::new(scenario.generate_days(11, 4));
        let groups = log.rolling_groups(3);
        let jobs: Vec<ReplayJob<'_>> = groups.iter().map(|&(h, t)| ReplayJob::new(h, t)).collect();
        let cycles = engine.replay_sharded(&jobs, 1).expect("replays");
        let mut lp_solves = 0u64;
        let mut pruned = 0u64;
        for c in &cycles {
            lp_solves += c.sse_totals.lp_solves;
            pruned += c.sse_totals.pruned_lps;
        }
        let fraction = pruned as f64 / (pruned + lp_solves) as f64;
        assert!(
            fraction > 0.5,
            "{name}: only {:.1}% of candidate LPs pruned",
            fraction * 100.0
        );
    }
}
