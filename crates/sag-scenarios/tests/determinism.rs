//! Sharded-replay determinism: for every shard count, `replay_sharded`
//! produces bitwise-identical `CycleResult`s to the sequential
//! `replay_batch` — only wall-clock time may differ. This is the contract
//! that lets the perf-smoke CI job scale shard counts freely without ever
//! changing results.

use sag_core::engine::{AuditCycleEngine, ReplayJob};
use sag_core::CycleResult;
use sag_scenarios::library::{MultiSite, PaperBaseline};
use sag_scenarios::Scenario;
use sag_sim::AlertLog;

/// Zero the wall-clock timing field so results can be compared exactly.
fn untimed(mut cycle: CycleResult) -> CycleResult {
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
    }
    cycle
}

fn assert_sharding_invariant(scenario: &dyn Scenario, seed: u64, history_days: u32, days: u32) {
    let engine = AuditCycleEngine::new(scenario.engine_config()).expect("scenario engine");
    let log = AlertLog::new(scenario.generate_days(seed, days));
    let groups = log.rolling_groups(history_days as usize);
    assert!(groups.len() >= 4, "need several jobs to shard");
    let jobs: Vec<ReplayJob<'_>> = groups
        .iter()
        .map(|&(history, test_day)| ReplayJob {
            history,
            test_day,
            budget: scenario.budget_for_day(test_day.day()),
        })
        .collect();

    // The sequential reference: replay_batch on the same jobs. With the
    // default feature set replay_batch is single-sharded; with `parallel` it
    // shards by core count — the invariant under test says that must not
    // matter.
    let tuples: Vec<(&[sag_sim::DayLog], &sag_sim::DayLog)> = groups.clone();
    let reference: Vec<CycleResult> = if jobs.iter().all(|j| j.budget.is_none()) {
        engine.replay_batch(&tuples).expect("batch replays")
    } else {
        engine.replay_sharded(&jobs, 1).expect("sharded replays")
    }
    .into_iter()
    .map(untimed)
    .collect();

    for shards in [2, 3, jobs.len() * 2] {
        let sharded: Vec<CycleResult> = engine
            .replay_sharded(&jobs, shards)
            .expect("sharded replays")
            .into_iter()
            .map(untimed)
            .collect();
        assert_eq!(
            reference.len(),
            sharded.len(),
            "{}: shards = {shards}",
            scenario.name()
        );
        // PartialEq over every f64 field: bitwise-identical or bust.
        assert_eq!(
            reference,
            sharded,
            "{}: shard count {shards} changed results",
            scenario.name()
        );
    }
}

#[test]
fn paper_baseline_sharding_is_bitwise_deterministic() {
    assert_sharding_invariant(&PaperBaseline, 2019, 6, 11);
}

#[test]
fn multi_site_sharding_is_bitwise_deterministic() {
    // 14 candidate types: with the `parallel` feature this also pushes the
    // per-alert candidate fan-out through its threaded path.
    assert_sharding_invariant(&MultiSite, 7, 4, 8);
}

#[test]
fn budget_scheduled_sharding_is_bitwise_deterministic() {
    assert_sharding_invariant(&sag_scenarios::library::BudgetShocks, 3, 4, 9);
}
