//! Crash-recovery equivalence across the registry: kill a durable
//! `AuditService` at deterministic alert indices — with clean cuts and
//! torn final records — recover from the surviving WAL bytes, finish the
//! day, and require the result bitwise identical to the uninterrupted run.
//! Runs every registry scenario on both general-purpose solver backends,
//! so durability inherits the same equivalence contract concurrency has.

use sag_core::engine::EngineBuilder;
use sag_core::sse::SolverBackendKind;
use sag_core::CycleResult;
use sag_scenarios::{registry, Scenario};
use sag_service::{
    AuditService, DurabilityOptions, FailpointFs, MemFs, Request, Response, ServiceError, TenantId,
};
use sag_sim::DayLog;

const SEED: u64 = 2027;
const HISTORY_DAYS: u32 = 4;

/// Zero the wall-clock timing field so results can be compared exactly.
fn untimed(mut cycle: CycleResult) -> CycleResult {
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
    }
    cycle
}

/// How the process dies at the chosen alert.
#[derive(Debug, Clone, Copy)]
enum Crash {
    /// The process is killed between appends: the WAL ends on a complete
    /// record boundary.
    Clean,
    /// The kill lands mid-append, `offset` bytes into the alert's frame —
    /// the torn final record recovery must discard.
    Torn { offset: usize },
}

fn builder_for(
    scenario: &dyn Scenario,
    backend: SolverBackendKind,
    history: Vec<DayLog>,
) -> (sag_service::ServiceBuilder, TenantId) {
    let mut config = scenario.engine_config();
    config.backend = backend;
    let tenant = TenantId::new(format!("{}-t0", scenario.name()));
    let builder = AuditService::builder().workers(0).tenant_with_history(
        tenant.clone(),
        EngineBuilder::from_config(config),
        history,
    );
    (builder, tenant)
}

fn drive_day(
    service: &mut AuditService,
    tenant: &TenantId,
    test_day: &DayLog,
    budget: Option<f64>,
) -> CycleResult {
    let Response::DayOpened { session, .. } = service
        .handle(Request::OpenDay {
            tenant: tenant.clone(),
            budget,
            day: Some(test_day.day()),
        })
        .expect("day opens")
    else {
        panic!("unexpected response");
    };
    for alert in test_day.alerts() {
        service
            .handle(Request::PushAlert {
                session,
                alert: *alert,
            })
            .expect("alert processes");
    }
    let Response::DayClosed { result, .. } = service
        .handle(Request::FinishDay { session })
        .expect("day closes")
    else {
        panic!("unexpected response");
    };
    result
}

/// Kill a durable run of `test_day` at alert `kill_alert`, recover from the
/// surviving bytes, resume where the recovered session says it stopped,
/// and return the finished result.
fn crashed_and_recovered(
    scenario: &dyn Scenario,
    backend: SolverBackendKind,
    history: &[DayLog],
    test_day: &DayLog,
    budget: Option<f64>,
    kill_alert: usize,
    crash: Crash,
) -> CycleResult {
    let store = MemFs::new();
    let options = DurabilityOptions::no_fsync();

    {
        let (builder, tenant) = builder_for(scenario, backend, history.to_vec());
        // WAL appends: #0 header, #1 OpenDay, #2 + i for alert i.
        let fs: Box<dyn sag_service::WalFs> = match crash {
            Crash::Clean => Box::new(store.clone()),
            Crash::Torn { offset } => Box::new(
                FailpointFs::new(store.clone()).kill_at_append(2 + kill_alert as u64, offset),
            ),
        };
        let mut service = builder
            .durable_on(fs, options)
            .build()
            .expect("durable build");
        let Response::DayOpened { session, .. } = service
            .handle(Request::OpenDay {
                tenant,
                budget,
                day: Some(test_day.day()),
            })
            .expect("day opens")
        else {
            panic!("unexpected response");
        };
        for alert in test_day.alerts().iter().take(match crash {
            // A clean kill stops before the chosen alert's append.
            Crash::Clean => kill_alert,
            // A torn kill dies inside it; push until the injected error.
            Crash::Torn { .. } => test_day.len(),
        }) {
            match service.handle(Request::PushAlert {
                session,
                alert: *alert,
            }) {
                Ok(_) => {}
                Err(ServiceError::Wal(_)) => break,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        // The process dies here; only `store`'s bytes survive.
    }

    let (builder, _tenant) = builder_for(scenario, backend, history.to_vec());
    let mut recovered = builder
        .recover_on(Box::new(store), options)
        .expect("recovers");
    let session = recovered
        .open_session_ids()
        .next()
        .expect("mid-day session recovered");
    let done = recovered
        .session(session)
        .expect("session visible")
        .alerts_processed();
    assert!(
        done == kill_alert || matches!(crash, Crash::Torn { .. }) && done == kill_alert + 1,
        "{} [{backend:?}]: recovered {done} alerts after a kill at {kill_alert} ({crash:?})",
        scenario.name()
    );
    for alert in &test_day.alerts()[done..] {
        recovered
            .handle(Request::PushAlert {
                session,
                alert: *alert,
            })
            .expect("resumed alert processes");
    }
    let Response::DayClosed { result, .. } = recovered
        .handle(Request::FinishDay { session })
        .expect("day closes")
    else {
        panic!("unexpected response");
    };
    result
}

fn assert_crash_recovery_equivalence(scenario: &dyn Scenario, backend: SolverBackendKind) {
    let days = scenario.generate_days(SEED, HISTORY_DAYS + 1);
    let (history, test_day) = days.split_at(HISTORY_DAYS as usize);
    let test_day = &test_day[0];
    let budget = scenario.budget_for_day(test_day.day());

    let (builder, tenant) = builder_for(scenario, backend, history.to_vec());
    let mut control_service = builder.build().expect("control build");
    let control = untimed(drive_day(&mut control_service, &tenant, test_day, budget));

    let n = test_day.len();
    assert!(n >= 2, "{}: day too small to crash inside", scenario.name());
    // Deterministic "random" kill points: first, an interior index derived
    // from the scenario name, and last — with a clean cut, a mid-frame
    // tear, and a tear past the frame (record lands, acknowledgement dies).
    let interior = 1 + (scenario.name().bytes().map(u64::from).sum::<u64>() as usize) % (n - 1);
    let cases = [
        (0, Crash::Clean),
        (interior, Crash::Torn { offset: 9 }),
        (
            n - 1,
            Crash::Torn {
                offset: usize::MAX / 2,
            },
        ),
    ];
    for (kill_alert, crash) in cases {
        let recovered = untimed(crashed_and_recovered(
            scenario, backend, history, test_day, budget, kill_alert, crash,
        ));
        assert_eq!(
            recovered,
            control,
            "{} [{backend:?}]: recovery after kill at alert {kill_alert} ({crash:?}) diverged",
            scenario.name()
        );
    }
}

#[test]
fn crash_recovery_matches_uninterrupted_on_the_auto_backend() {
    for scenario in registry() {
        assert_crash_recovery_equivalence(scenario.as_ref(), SolverBackendKind::Auto);
    }
}

#[test]
fn crash_recovery_matches_uninterrupted_on_the_lp_backend() {
    for scenario in registry() {
        assert_crash_recovery_equivalence(scenario.as_ref(), SolverBackendKind::SimplexLp);
    }
}
