//! The built-in scenario library.
//!
//! Seven regimes, each stressing one assumption the paper's single-workload
//! evaluation keeps fixed:
//!
//! | name | stresses |
//! |------|----------|
//! | `paper-baseline`  | nothing — the paper's 7-type hospital workload |
//! | `bursty-arrivals` | stationarity *within* the day (self-exciting cascades) |
//! | `attacker-drift`  | stationarity *across* days (alert mix drifts, moving the attacker's best response) |
//! | `budget-shocks`   | the flat per-cycle budget (audit capacity shocks) |
//! | `noisy-evidence`  | the perfect warning channel (leaky signals, noisy Bayesian posterior) |
//! | `multi-site`      | the single homogeneous population (two-hospital federation, 14 types) |
//! | `metro-grid`      | per-alert solve cost at scale (four-site metro federation, 28 types) |
//!
//! Two further **XL stress scenarios** — [`ContinentalSprawl`] (64 types)
//! and [`GlobalMesh`] (128 types) — are public but deliberately *not*
//! registered in [`crate::registry()`](fn@crate::registry): the registry-wide equivalence suites
//! replay every registered scenario in debug builds, and a 128-type game
//! multiplies that cost far past what a test run should pay. The kernel
//! benchmarks (`sag-bench`) and the ε-mode tests construct them directly.

use crate::scenario::Scenario;
use sag_core::engine::EngineConfig;
use sag_core::model::{GameConfig, PayoffTable, Payoffs};
use sag_sim::{
    AlertCatalog, AlertTypeId, AlertTypeInfo, ArrivalProcess, DayLog, DiurnalProfile, StreamConfig,
    StreamGenerator, VolumeTrend,
};

fn generate(config: StreamConfig, num_days: u32) -> Vec<DayLog> {
    StreamGenerator::new(config).generate_days(num_days)
}

// ---------------------------------------------------------------------------
// paper-baseline
// ---------------------------------------------------------------------------

/// The paper's 7-type hospital workload: stationary arrivals on the workday
/// diurnal profile, Table 2 payoffs, flat budget 50.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperBaseline;

impl Scenario for PaperBaseline {
    fn name(&self) -> &'static str {
        "paper-baseline"
    }

    fn description(&self) -> &'static str {
        "the paper's 7-type hospital workload: stationary arrivals, flat budget 50"
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig::paper_multi_type()
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        generate(StreamConfig::paper_multi_type(seed), num_days)
    }
}

// ---------------------------------------------------------------------------
// bursty-arrivals
// ---------------------------------------------------------------------------

/// Self-exciting arrivals: every alert spawns a Poisson(0.35) cascade of
/// same-type offspring at ~10-minute delays, clustering the within-day load
/// the stationary forecaster was never fitted for.
#[derive(Debug, Clone, Copy, Default)]
pub struct BurstyArrivals;

impl Scenario for BurstyArrivals {
    fn name(&self) -> &'static str {
        "bursty-arrivals"
    }

    fn description(&self) -> &'static str {
        "self-exciting alert cascades (branching 0.35, ~10 min decay) on the paper game"
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig::paper_multi_type()
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        let config =
            StreamConfig::paper_multi_type(seed).with_arrivals(ArrivalProcess::SelfExciting {
                branching: 0.35,
                decay_secs: 600.0,
            });
        generate(config, num_days)
    }
}

// ---------------------------------------------------------------------------
// attacker-drift
// ---------------------------------------------------------------------------

/// Per-type volume slopes of the drift scenario: the benign bulk types (1–3)
/// shrink while the severe combination types (5–7) grow, day over day. As
/// the future-alert estimates shift, so does the attacker's best-response
/// type — exercising exactly the utility-structure variation of Chen et
/// al.'s signaling games.
const DRIFT_SLOPES: [f64; 7] = [-0.025, -0.015, -0.02, 0.0, 0.03, 0.04, 0.05];

/// Non-stationary alert mix: volumes drift linearly across days and the
/// engine counters with an exponentially day-weighted forecast fit.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackerDrift;

impl Scenario for AttackerDrift {
    fn name(&self) -> &'static str {
        "attacker-drift"
    }

    fn description(&self) -> &'static str {
        "alert mix drifts day over day (severe types grow), forecaster uses day decay 0.8"
    }

    fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::paper_multi_type();
        config.forecast_decay = 0.8;
        config
    }

    fn history_days(&self) -> u32 {
        14
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        let config = StreamConfig::paper_multi_type(seed).with_trend(VolumeTrend::Linear {
            slopes: DRIFT_SLOPES.to_vec(),
        });
        generate(config, num_days)
    }
}

// ---------------------------------------------------------------------------
// budget-shocks
// ---------------------------------------------------------------------------

/// Audit-capacity shocks: every fourth day the audit budget collapses to 30%
/// (staffing shortfall), and mid-cycle days run at 150% (catch-up surge).
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetShocks;

impl BudgetShocks {
    /// The paper's multi-type cycle budget, which the schedule scales. A
    /// test pins this to `engine_config().game.budget` so the two cannot
    /// drift apart.
    const BASE_BUDGET: f64 = 50.0;

    /// The deterministic shock schedule, as a multiple of the base budget.
    #[must_use]
    pub fn budget_multiplier(day: u32) -> f64 {
        match day % 4 {
            0 => 0.3,
            2 => 1.5,
            _ => 1.0,
        }
    }
}

impl Scenario for BudgetShocks {
    fn name(&self) -> &'static str {
        "budget-shocks"
    }

    fn description(&self) -> &'static str {
        "paper workload under a 4-day budget cycle: 30% shock days, 150% surge days"
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig::paper_multi_type()
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        generate(StreamConfig::paper_multi_type(seed), num_days)
    }

    fn budget_for_day(&self, day: u32) -> Option<f64> {
        Some(Self::BASE_BUDGET * Self::budget_multiplier(day))
    }
}

// ---------------------------------------------------------------------------
// noisy-evidence
// ---------------------------------------------------------------------------

/// Leaky warning channel: the attacker misreads the delivered signal with
/// probability 0.15 and best-responds to his noisy Bayesian posterior —
/// the evidence-noise regime of leaky-deception signaling games.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoisyEvidence;

impl Scenario for NoisyEvidence {
    fn name(&self) -> &'static str {
        "noisy-evidence"
    }

    fn description(&self) -> &'static str {
        "warning channel flips with probability 0.15; attacker best-responds to the noisy posterior"
    }

    fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::paper_multi_type();
        config.signal_noise = 0.15;
        config
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        generate(StreamConfig::paper_multi_type(seed), num_days)
    }
}

// ---------------------------------------------------------------------------
// federations (multi-site, metro-grid)
// ---------------------------------------------------------------------------

/// One site of a federated deployment: a scaled copy of the paper's
/// hospital. `(label, volume scale, payoff-stakes scale, audit-cost scale)`.
type Site = (&'static str, f64, f64, f64);

/// The federated alert catalogue: every site contributes a scaled copy of
/// the paper's 7 Table-1 types, so a federation of `k` sites is a `7k`-type
/// game over one shared audit desk.
fn federated_catalog(sites: &[Site]) -> AlertCatalog {
    let base = AlertCatalog::paper_table1();
    let mut types = Vec::new();
    for &(label, volume, _, _) in sites {
        for info in base.types() {
            types.push(AlertTypeInfo {
                id: AlertTypeId(types.len() as u16),
                description: format!("{label}: {}", info.description),
                rules: info.rules,
                daily_mean: info.daily_mean * volume,
                daily_std: info.daily_std * volume.sqrt(),
            });
        }
    }
    AlertCatalog::new(types)
}

/// The federated game: Table-2 payoffs scaled per site, one shared budget.
fn federated_game(sites: &[Site], budget: f64) -> GameConfig {
    let base = PayoffTable::paper_table2();
    let mut payoffs = Vec::new();
    let mut audit_costs = Vec::new();
    for &(_, _, stakes, cost) in sites {
        for p in base.all() {
            payoffs.push(Payoffs::new(
                p.auditor_covered * stakes,
                p.auditor_uncovered * stakes,
                p.attacker_covered * stakes,
                p.attacker_uncovered * stakes,
            ));
            audit_costs.push(cost);
        }
    }
    GameConfig {
        catalog: federated_catalog(sites),
        payoffs: PayoffTable::new(payoffs),
        audit_costs,
        budget,
    }
}

/// A two-hospital federation sharing one audit desk: site A is the paper's
/// hospital; site B is a smaller satellite with ~half the alert volume but
/// 1.5x-stakes payoffs and costlier audits (remote review). The combined
/// game has 14 alert types and one shared budget, so the equilibrium must
/// trade coverage off *across sites* — and, at ≥ 8 candidate types, the
/// solve exercises the engine's parallel candidate fan-out.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiSite;

impl MultiSite {
    /// `(volume scale, payoff scale, audit-cost scale)` per site.
    const SITES: [Site; 2] = [("site-a", 1.0, 1.0, 1.0), ("site-b", 0.5, 1.5, 1.3)];

    fn federated_game() -> GameConfig {
        federated_game(&Self::SITES, 80.0)
    }
}

impl Scenario for MultiSite {
    fn name(&self) -> &'static str {
        "multi-site"
    }

    fn description(&self) -> &'static str {
        "two-hospital federation: 14 types, heterogeneous volumes/payoffs/costs, shared budget 80"
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig::paper_defaults(Self::federated_game())
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        let config = StreamConfig::stationary(
            federated_catalog(&Self::SITES),
            DiurnalProfile::standard_hco(),
            seed,
        );
        generate(config, num_days)
    }
}

/// A four-site metropolitan federation: the paper's hospital as the hub,
/// two regional hospitals and a specialist clinic, all auditing from one
/// shared desk. The combined game has **28 alert types**, which makes
/// per-alert solve cost the binding constraint — the multiple-LP method
/// solves one LP per candidate type, so this scenario is what proves the
/// incremental pruning layer (solve cost scaling with *change*, not type
/// count) at federation scale. Smaller sites carry higher stakes and
/// costlier remote audits, so the equilibrium budget split is genuinely
/// heterogeneous across the grid.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetroGrid;

impl MetroGrid {
    /// `(volume scale, payoff scale, audit-cost scale)` per site.
    const SITES: [Site; 4] = [
        ("hub", 1.0, 1.0, 1.0),
        ("north", 0.7, 1.2, 1.15),
        ("south", 0.55, 1.4, 1.25),
        ("clinic", 0.35, 1.8, 1.5),
    ];

    fn federated_game() -> GameConfig {
        federated_game(&Self::SITES, 130.0)
    }
}

impl Scenario for MetroGrid {
    fn name(&self) -> &'static str {
        "metro-grid"
    }

    fn description(&self) -> &'static str {
        "four-site metro federation: 28 types, hub + two regionals + clinic, shared budget 130"
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig::paper_defaults(Self::federated_game())
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        let config = StreamConfig::stationary(
            federated_catalog(&Self::SITES),
            DiurnalProfile::standard_hco(),
            seed,
        );
        generate(config, num_days)
    }
}

// ---------------------------------------------------------------------------
// XL synthesized federations (continental-sprawl, global-mesh) — unregistered
// ---------------------------------------------------------------------------

/// Deterministic `(volume, stakes, cost)` scales of the `i`-th synthesized
/// type. Volumes taper off (a long tail of quiet sites), stakes and audit
/// costs cycle through co-prime periods so no two types of the same base
/// kind are exact copies — which keeps the candidate LPs genuinely distinct
/// at 64/128 types instead of a degenerate block of ties.
fn synthesized_scale(i: usize) -> (f64, f64, f64) {
    let volume = 0.35 + 0.65 / (1.0 + i as f64 / 12.0);
    let stakes = 1.0 + 0.06 * ((i % 11) as f64);
    let cost = 1.0 + 0.05 * ((i % 13) as f64);
    (volume, stakes, cost)
}

/// A synthesized `count`-type catalogue: type `i` is a scaled copy of the
/// paper's base type `i mod 7`, with [`synthesized_scale`] volumes.
fn synthesized_catalog(count: usize) -> AlertCatalog {
    let base = AlertCatalog::paper_table1();
    let types = (0..count)
        .map(|i| {
            let info = base
                .get(AlertTypeId((i % 7) as u16))
                .expect("paper base type");
            let (volume, _, _) = synthesized_scale(i);
            AlertTypeInfo {
                id: AlertTypeId(i as u16),
                description: format!("xl-{i}: {}", info.description),
                rules: info.rules,
                daily_mean: info.daily_mean * volume,
                daily_std: info.daily_std * volume.sqrt(),
            }
        })
        .collect();
    AlertCatalog::new(types)
}

/// The synthesized `count`-type game: Table-2 payoffs scaled per type by
/// [`synthesized_scale`], one shared budget.
fn synthesized_game(count: usize, budget: f64) -> GameConfig {
    let base = PayoffTable::paper_table2();
    let mut payoffs = Vec::new();
    let mut audit_costs = Vec::new();
    for i in 0..count {
        let p = base.get(AlertTypeId((i % 7) as u16));
        let (_, stakes, cost) = synthesized_scale(i);
        payoffs.push(Payoffs::new(
            p.auditor_covered * stakes,
            p.auditor_uncovered * stakes,
            p.attacker_covered * stakes,
            p.attacker_uncovered * stakes,
        ));
        audit_costs.push(cost);
    }
    GameConfig {
        catalog: synthesized_catalog(count),
        payoffs: PayoffTable::new(payoffs),
        audit_costs,
        budget,
    }
}

/// A 64-type synthesized continental federation — the first of the two XL
/// stress scenarios behind the large-type-count solver work (ROADMAP open
/// item 2). Public but **not registered**: see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContinentalSprawl;

impl ContinentalSprawl {
    /// Number of alert types.
    pub const TYPES: usize = 64;

    /// The synthesized 64-type game (shared budget 260).
    #[must_use]
    pub fn game() -> GameConfig {
        synthesized_game(Self::TYPES, 260.0)
    }
}

impl Scenario for ContinentalSprawl {
    fn name(&self) -> &'static str {
        "continental-sprawl"
    }

    fn description(&self) -> &'static str {
        "64-type synthesized continental federation, shared budget 260 (unregistered XL stress)"
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig::paper_defaults(Self::game())
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        let config = StreamConfig::stationary(
            synthesized_catalog(Self::TYPES),
            DiurnalProfile::standard_hco(),
            seed,
        );
        generate(config, num_days)
    }
}

/// A 128-type synthesized global federation — the larger XL stress scenario
/// and the size the `lp_kernel` BENCH_1 floors are gated on. Public but
/// **not registered**: see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalMesh;

impl GlobalMesh {
    /// Number of alert types.
    pub const TYPES: usize = 128;

    /// The synthesized 128-type game (shared budget 470).
    #[must_use]
    pub fn game() -> GameConfig {
        synthesized_game(Self::TYPES, 470.0)
    }
}

impl Scenario for GlobalMesh {
    fn name(&self) -> &'static str {
        "global-mesh"
    }

    fn description(&self) -> &'static str {
        "128-type synthesized global federation, shared budget 470 (unregistered XL stress)"
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig::paper_defaults(Self::game())
    }

    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog> {
        let config = StreamConfig::stationary(
            synthesized_catalog(Self::TYPES),
            DiurnalProfile::standard_hco(),
            seed,
        );
        generate(config, num_days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_site_game_is_valid_and_doubled() {
        let game = MultiSite::federated_game();
        game.validate().expect("federated game validates");
        assert_eq!(game.num_types(), 14);
        assert_eq!(game.catalog.len(), 14);
        // Site B types carry scaled payoffs and costs.
        assert_eq!(game.audit_costs[0], 1.0);
        assert_eq!(game.audit_costs[7], 1.3);
        let a = game.payoffs.get(AlertTypeId(0));
        let b = game.payoffs.get(AlertTypeId(7));
        assert!((b.auditor_covered - a.auditor_covered * 1.5).abs() < 1e-12);
    }

    #[test]
    fn metro_grid_game_is_a_valid_28_type_federation() {
        let game = MetroGrid::federated_game();
        game.validate().expect("metro-grid game validates");
        assert_eq!(game.num_types(), 28);
        assert_eq!(game.catalog.len(), 28);
        assert_eq!(game.budget, 130.0);
        // Each site block scales the paper's payoffs and costs by its spec.
        for (site, &(label, volume, stakes, cost)) in MetroGrid::SITES.iter().enumerate() {
            let base = PayoffTable::paper_table2();
            for t in 0..7usize {
                let id = AlertTypeId((site * 7 + t) as u16);
                let scaled = game.payoffs.get(id);
                let reference = base.get(AlertTypeId(t as u16));
                assert!(
                    (scaled.attacker_uncovered - reference.attacker_uncovered * stakes).abs()
                        < 1e-12,
                    "{label} type {t}"
                );
                assert_eq!(game.audit_costs[site * 7 + t], cost);
                let info = game.catalog.get(id).expect("catalogued type");
                assert!(info.description.starts_with(label));
                assert!(
                    (info.daily_mean - base_catalog_mean(t) * volume).abs() < 1e-9,
                    "{label} type {t}: mean {}",
                    info.daily_mean
                );
            }
        }
        // The hub dominates volume; the clinic carries the highest stakes.
        let hub = game.catalog.get(AlertTypeId(0)).expect("hub type");
        let clinic = game.catalog.get(AlertTypeId(21)).expect("clinic type");
        assert!(hub.daily_mean > clinic.daily_mean);
    }

    fn base_catalog_mean(t: usize) -> f64 {
        AlertCatalog::paper_table1()
            .get(AlertTypeId(t as u16))
            .expect("paper type")
            .daily_mean
    }

    #[test]
    fn xl_games_are_valid_federations_of_the_declared_size() {
        let sprawl = ContinentalSprawl::game();
        sprawl.validate().expect("64-type game validates");
        assert_eq!(sprawl.num_types(), 64);
        assert_eq!(sprawl.catalog.len(), 64);

        let mesh = GlobalMesh::game();
        mesh.validate().expect("128-type game validates");
        assert_eq!(mesh.num_types(), 128);
        assert_eq!(mesh.catalog.len(), 128);

        // Type i is the scaled paper base type i mod 7.
        let base = PayoffTable::paper_table2();
        for i in [0usize, 6, 7, 63, 64, 127] {
            let (volume, stakes, cost) = synthesized_scale(i);
            let p = mesh.payoffs.get(AlertTypeId(i as u16));
            let r = base.get(AlertTypeId((i % 7) as u16));
            assert!((p.auditor_uncovered - r.auditor_uncovered * stakes).abs() < 1e-12);
            assert_eq!(mesh.audit_costs[i], cost);
            let info = mesh.catalog.get(AlertTypeId(i as u16)).expect("type");
            let base_mean = base_catalog_mean(i % 7);
            assert!(
                (info.daily_mean - base_mean * volume).abs() < 1e-9,
                "type {i}"
            );
        }
        // The scale cycle must keep same-base types distinct, not copies.
        let a = mesh.payoffs.get(AlertTypeId(0));
        let b = mesh.payoffs.get(AlertTypeId(7));
        assert_ne!(a.auditor_uncovered, b.auditor_uncovered);
    }

    #[test]
    fn xl_scenarios_generate_days_and_stay_unregistered() {
        for scenario in [&ContinentalSprawl as &dyn Scenario, &GlobalMesh] {
            let days = scenario.generate_days(5, 2);
            assert_eq!(days.len(), 2);
            assert!(days.iter().all(|d| !d.alerts().is_empty()));
            scenario
                .engine_config()
                .game
                .validate()
                .expect("XL engine config validates");
            assert!(
                crate::registry::find_scenario(scenario.name()).is_none(),
                "{} must stay out of the registry (debug suites replay every \
                 registered scenario)",
                scenario.name()
            );
        }
    }

    #[test]
    fn budget_shock_base_matches_the_engine_config() {
        assert_eq!(
            BudgetShocks::BASE_BUDGET,
            BudgetShocks.engine_config().game.budget
        );
    }

    #[test]
    fn budget_shock_schedule_cycles() {
        assert_eq!(BudgetShocks::budget_multiplier(0), 0.3);
        assert_eq!(BudgetShocks::budget_multiplier(1), 1.0);
        assert_eq!(BudgetShocks::budget_multiplier(2), 1.5);
        assert_eq!(BudgetShocks::budget_multiplier(3), 1.0);
        assert_eq!(BudgetShocks::budget_multiplier(4), 0.3);
        let shocks = BudgetShocks;
        assert_eq!(shocks.budget_for_day(12), Some(15.0));
        assert_eq!(shocks.budget_for_day(14), Some(75.0));
    }

    #[test]
    fn drift_slopes_cover_every_type() {
        assert_eq!(DRIFT_SLOPES.len(), 7);
        // The drift must actually move mass towards the severe types.
        assert!(DRIFT_SLOPES[..3].iter().all(|&s| s < 0.0));
        assert!(DRIFT_SLOPES[4..].iter().all(|&s| s > 0.0));
    }
}
