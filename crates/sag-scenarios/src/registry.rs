//! The canonical list of registered scenarios.

use crate::library::{
    AttackerDrift, BudgetShocks, BurstyArrivals, MetroGrid, MultiSite, NoisyEvidence, PaperBaseline,
};
use crate::scenario::Scenario;

/// All registered scenarios, in canonical order. `repro_scenarios` replays
/// this list end to end and the property tests quantify over it, so adding a
/// scenario here automatically puts it under test and into `BENCH_2.json`.
#[must_use]
pub fn registry() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(PaperBaseline),
        Box::new(BurstyArrivals),
        Box::new(AttackerDrift),
        Box::new(BudgetShocks),
        Box::new(NoisyEvidence),
        Box::new(MultiSite),
        Box::new(MetroGrid),
    ]
}

/// Look a scenario up by its registry name.
#[must_use]
pub fn find_scenario(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_at_least_seven_uniquely_named_scenarios() {
        let reg = registry();
        assert!(reg.len() >= 7, "only {} scenarios registered", reg.len());
        let names: HashSet<&'static str> = reg.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
        for s in &reg {
            assert!(!s.description().is_empty());
            assert!(
                s.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "name {:?} is not kebab-case",
                s.name()
            );
        }
    }

    #[test]
    fn find_scenario_resolves_names() {
        assert!(find_scenario("paper-baseline").is_some());
        assert!(find_scenario("multi-site").is_some());
        assert!(find_scenario("metro-grid").is_some());
        assert!(find_scenario("no-such-scenario").is_none());
    }
}
