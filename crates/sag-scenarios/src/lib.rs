//! # sag-scenarios — named workloads for the Signaling Audit Game
//!
//! The paper evaluates on a single hospital access-log workload: stationary
//! Poisson-like arrivals, one attacker payoff structure, a flat per-cycle
//! budget, and a perfect warning channel. Production deployments face much
//! messier regimes — bursty alert cascades, populations whose alert mix
//! drifts week over week, budget cuts, warnings that leak, and federations
//! of heterogeneous sites. This crate opens that workload dimension:
//!
//! * [`Scenario`] — the trait a workload implements: a name, a log/arrival
//!   generator, the game (payoffs, costs, attacker structure), a per-day
//!   budget schedule, and the engine knobs (forecast weighting, signal
//!   noise) it should be replayed with;
//! * [`library`] — six concrete scenarios, from the paper's baseline to a
//!   two-hospital federation (see the module docs for the full list);
//! * [`registry`](mod@registry) — the canonical list of registered
//!   scenarios, which the `repro_scenarios` benchmark replays end to end;
//! * [`driver`] — runs a scenario through the engine's sharded replay
//!   ([`sag_core::engine::AuditCycleEngine::replay_sharded`]) or streams it
//!   alert-at-a-time through [`sag_core::DaySession`]s (recording per-alert
//!   decision latency), and aggregates throughput, solver-work and utility
//!   metrics.
//!
//! Results are deterministic: a scenario replayed with any shard count, with
//! or without the `parallel` feature, produces bitwise-identical
//! [`sag_core::CycleResult`]s (only wall-clock time changes).

#![forbid(unsafe_code)]

pub mod driver;
pub mod library;
pub mod registry;
pub mod scenario;

pub use driver::{
    run_scenario, run_scenario_service, run_scenario_service_with, run_scenario_sized,
    run_scenario_sized_with, stream_scenario_sized, tenant_fleet, tenant_fleet_cluster_parts,
    tenant_fleet_parts, FleetTenant, ScenarioRun, ServiceRun, StreamingRun, TenantFleet,
};
pub use registry::{find_scenario, registry};
pub use scenario::Scenario;
