//! Replays scenarios through the engine and aggregates the metrics
//! `BENCH_2.json` tracks.
//!
//! Three replay modes:
//!
//! * [`run_scenario_sized`] — the sharded batch driver
//!   ([`AuditCycleEngine::replay_sharded`]), which streams each recorded day
//!   through a [`sag_core::DaySession`] internally; the throughput path.
//! * [`stream_scenario_sized`] — the explicit alert-at-a-time path: one
//!   [`sag_core::DaySession`] per day, one
//!   [`push_alert`](sag_core::engine::Session::push_alert) per alert, with
//!   the wall-clock decision latency of every push recorded. This is what a
//!   production deployment's ingest loop looks like, and what the streaming
//!   section of `BENCH_1.json` measures.
//! * [`run_scenario_service`] — the multi-tenant front-door path: the
//!   scenario instantiated as N tenants of one
//!   [`sag_service::AuditService`] (each tenant its own engine and alert
//!   stream), replayed concurrently over the service's worker pool. This is
//!   the `service_concurrent` section of `BENCH_2.json`, and — because
//!   every tenant's cycles are pure functions of its own stream — its
//!   results are bitwise identical to replaying each tenant serially.

use crate::scenario::Scenario;
use sag_cluster::ClusterBuilder;
use sag_core::engine::{AuditCycleEngine, EngineBuilder, ReplayJob};
use sag_core::sse::SseCacheTotals;
use sag_core::{CycleResult, Result};
use sag_service::{AuditService, ServiceBuilder, ServiceError, ServiceJob, TenantId};
use std::time::Instant;

/// The outcome of replaying one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Registry name of the scenario.
    pub name: &'static str,
    /// Shard count the replay ran with.
    pub shards: usize,
    /// Wall-clock time of the sharded replay (excluding log generation).
    pub wall_seconds: f64,
    /// Per-day cycle results, in day order.
    pub cycles: Vec<CycleResult>,
}

impl ScenarioRun {
    /// Total alerts replayed.
    #[must_use]
    pub fn alerts(&self) -> usize {
        self.cycles.iter().map(CycleResult::len).sum()
    }

    /// End-to-end replay throughput in alerts per second.
    #[must_use]
    pub fn alerts_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.alerts() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Summed solver-work counters across all replayed days.
    #[must_use]
    pub fn sse_totals(&self) -> SseCacheTotals {
        let mut totals = SseCacheTotals::default();
        for c in &self.cycles {
            totals.solves += c.sse_totals.solves;
            totals.lp_solves += c.sse_totals.lp_solves;
            totals.warm_attempts += c.sse_totals.warm_attempts;
            totals.warm_hits += c.sse_totals.warm_hits;
            totals.pivots += c.sse_totals.pivots;
            totals.fast_path_solves += c.sse_totals.fast_path_solves;
            totals.pruned_lps += c.sse_totals.pruned_lps;
            totals.eps_skipped_lps += c.sse_totals.eps_skipped_lps;
        }
        totals
    }

    /// Summed certified ε utility-loss bound across all replayed days
    /// (0.0 for exact runs).
    #[must_use]
    pub fn certified_eps_loss(&self) -> f64 {
        self.cycles.iter().map(|c| c.certified_eps_loss).sum()
    }

    /// Alert-weighted mean of a per-outcome quantity. Weighting by alert
    /// count means zero-alert days contribute nothing — empty days can never
    /// skew a scenario average (they would under a day-weighted mean).
    fn mean_outcome(&self, value: impl Fn(&sag_core::AlertOutcome) -> f64) -> f64 {
        let alerts = self.alerts();
        if alerts == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .cycles
            .iter()
            .flat_map(|c| c.outcomes.iter())
            .map(value)
            .sum();
        sum / alerts as f64
    }

    /// Mean per-alert auditor utility under the OSSP.
    #[must_use]
    pub fn mean_ossp(&self) -> f64 {
        self.mean_outcome(|o| o.ossp_utility)
    }

    /// Mean per-alert auditor utility under the online SSE.
    #[must_use]
    pub fn mean_online(&self) -> f64 {
        self.mean_outcome(|o| o.online_sse_utility)
    }

    /// Mean per-alert auditor utility under the offline SSE baseline.
    #[must_use]
    pub fn mean_offline(&self) -> f64 {
        self.mean_outcome(|o| o.offline_sse_utility)
    }

    /// Fraction of alerts where the OSSP is no worse than the online SSE.
    #[must_use]
    pub fn fraction_ossp_not_worse(&self) -> f64 {
        self.mean_outcome(|o| f64::from(u8::from(o.ossp_utility >= o.online_sse_utility - 1e-9)))
    }

    /// Fraction of alerts on which the OSSP fully deterred the attack.
    #[must_use]
    pub fn fraction_deterred(&self) -> f64 {
        self.mean_outcome(|o| f64::from(u8::from(o.ossp_deterred)))
    }
}

/// Replay `scenario` with its own evaluation layout.
///
/// # Errors
///
/// Propagates engine construction and solver errors.
pub fn run_scenario(scenario: &dyn Scenario, seed: u64, shards: usize) -> Result<ScenarioRun> {
    run_scenario_sized(
        scenario,
        seed,
        shards,
        scenario.history_days(),
        scenario.test_days(),
    )
}

/// Replay `scenario` with an explicit evaluation layout: `history_days` of
/// fitted history ahead of each of `test_days` rolling test days.
///
/// # Errors
///
/// Propagates engine construction and solver errors.
pub fn run_scenario_sized(
    scenario: &dyn Scenario,
    seed: u64,
    shards: usize,
    history_days: u32,
    test_days: u32,
) -> Result<ScenarioRun> {
    run_scenario_sized_with(scenario, seed, shards, history_days, test_days, |_| {})
}

/// [`run_scenario_sized`] with an engine-configuration override hook,
/// applied after the scenario's own [`Scenario::engine_config`]. Used by
/// benchmarks and equivalence tests to flip engine-level switches (solver
/// backend, pruning mode) on an otherwise identical replay.
///
/// # Errors
///
/// Propagates engine construction and solver errors.
pub fn run_scenario_sized_with(
    scenario: &dyn Scenario,
    seed: u64,
    shards: usize,
    history_days: u32,
    test_days: u32,
    configure: impl FnOnce(&mut sag_core::engine::EngineConfig),
) -> Result<ScenarioRun> {
    let mut config = scenario.engine_config();
    configure(&mut config);
    let engine = AuditCycleEngine::new(config)?;
    let days = scenario.generate_days(seed, history_days + test_days);
    let log = sag_sim::AlertLog::new(days);
    let groups = log.rolling_groups(history_days as usize);
    let jobs: Vec<ReplayJob<'_>> = groups
        .iter()
        .map(|&(history, test_day)| ReplayJob {
            history,
            test_day,
            budget: scenario.budget_for_day(test_day.day()),
        })
        .collect();

    let started = Instant::now();
    let cycles = engine.replay_sharded(&jobs, shards)?;
    let wall_seconds = started.elapsed().as_secs_f64();

    Ok(ScenarioRun {
        name: scenario.name(),
        shards,
        wall_seconds,
        cycles,
    })
}

/// A scenario streamed alert-by-alert through [`sag_core::DaySession`]s,
/// with the per-alert decision latency of every push recorded.
#[derive(Debug, Clone)]
pub struct StreamingRun {
    /// The batch-shaped view of the streamed replay (always 1 shard).
    pub run: ScenarioRun,
    /// Wall-clock latency of each [`push_alert`](sag_core::DaySession::push_alert)
    /// call, in nanoseconds, in arrival order across all replayed days. This
    /// is the full decision latency — forecast update, both worlds' SSE
    /// solves, signaling scheme, budget charge — not just the solve time the
    /// [`sag_core::AlertOutcome::solve_micros`] field records.
    pub push_nanos: Vec<u64>,
}

/// Stream `scenario` alert-at-a-time with an explicit evaluation layout:
/// open a [`sag_core::DaySession`] per test day, push every alert of the
/// recorded day individually, and time each push.
///
/// The resulting [`CycleResult`]s are bitwise identical to
/// [`run_scenario_sized`] at any shard count — the batch driver is a wrapper
/// over the same sessions — so this mode only adds the latency telemetry.
///
/// # Errors
///
/// Propagates engine construction and solver errors.
pub fn stream_scenario_sized(
    scenario: &dyn Scenario,
    seed: u64,
    history_days: u32,
    test_days: u32,
) -> Result<StreamingRun> {
    let engine = AuditCycleEngine::new(scenario.engine_config())?;
    let days = scenario.generate_days(seed, history_days + test_days);
    let log = sag_sim::AlertLog::new(days);
    let groups = log.rolling_groups(history_days as usize);

    let mut cycles = Vec::with_capacity(groups.len());
    let mut push_nanos = Vec::with_capacity(log.total_alerts());
    let started = Instant::now();
    for (history, test_day) in groups {
        let mut session = engine.open_day(history, scenario.budget_for_day(test_day.day()))?;
        session.set_day(test_day.day());
        for alert in test_day.alerts() {
            let arrived = Instant::now();
            session.push_alert(alert)?;
            push_nanos.push(arrived.elapsed().as_nanos() as u64);
        }
        cycles.push(session.finish());
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    Ok(StreamingRun {
        run: ScenarioRun {
            name: scenario.name(),
            shards: 1,
            wall_seconds,
            cycles,
        },
        push_nanos,
    })
}

/// A scenario replayed as N concurrent tenants of one
/// [`sag_service::AuditService`]: each tenant gets its own engine and its
/// own seeded alert stream, and every tenant-day replays as one
/// [`ServiceJob`] over the service's worker pool.
#[derive(Debug, Clone)]
pub struct ServiceRun {
    /// Registry name of the scenario.
    pub name: &'static str,
    /// Number of tenants the service multiplexed.
    pub tenants: usize,
    /// Worker threads of the service pool (0 = inline serial replay).
    pub workers: usize,
    /// Wall-clock time of the concurrent replay (excluding log generation
    /// and service construction).
    pub wall_seconds: f64,
    /// Per-tenant, per-day cycle results: `cycles[t]` holds tenant `t`'s
    /// days in day order.
    pub cycles: Vec<Vec<CycleResult>>,
}

impl ServiceRun {
    /// Total alerts replayed across all tenants.
    #[must_use]
    pub fn alerts(&self) -> usize {
        self.cycles.iter().flatten().map(CycleResult::len).sum()
    }

    /// End-to-end service throughput in alerts per second.
    #[must_use]
    pub fn alerts_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.alerts() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Replay `scenario` as `tenants` concurrent tenants of one service, each
/// on its own stream seeded `seed + tenant_index`.
///
/// # Errors
///
/// Propagates service construction and engine errors.
pub fn run_scenario_service(
    scenario: &dyn Scenario,
    seed: u64,
    tenants: usize,
    workers: usize,
    history_days: u32,
    test_days: u32,
) -> std::result::Result<ServiceRun, ServiceError> {
    run_scenario_service_with(
        scenario,
        seed,
        tenants,
        workers,
        history_days,
        test_days,
        |_| {},
    )
}

/// [`run_scenario_service`] with an engine-configuration override hook,
/// applied to every tenant after the scenario's own
/// [`Scenario::engine_config`]. The equivalence tests use it to pin the
/// solver backend.
///
/// # Errors
///
/// Propagates service construction and engine errors.
pub fn run_scenario_service_with(
    scenario: &dyn Scenario,
    seed: u64,
    tenants: usize,
    workers: usize,
    history_days: u32,
    test_days: u32,
    configure: impl FnOnce(&mut sag_core::engine::EngineConfig),
) -> std::result::Result<ServiceRun, ServiceError> {
    let mut config = scenario.engine_config();
    configure(&mut config);

    let tenant_ids: Vec<TenantId> = (0..tenants)
        .map(|t| TenantId::new(format!("{}-t{t}", scenario.name())))
        .collect();
    let mut builder = AuditService::builder().workers(workers);
    for id in &tenant_ids {
        // History rides on the jobs (it varies per rolling group), so the
        // tenants register with empty stored history.
        builder = builder.tenant(id.clone(), EngineBuilder::from_config(config.clone()));
    }
    let service = builder.build()?;

    // Each tenant audits its own alert stream: same regime, distinct seed.
    let logs: Vec<sag_sim::AlertLog> = (0..tenants)
        .map(|t| {
            sag_sim::AlertLog::new(
                scenario.generate_days(seed + t as u64, history_days + test_days),
            )
        })
        .collect();
    let groups: Vec<Vec<(&[sag_sim::DayLog], &sag_sim::DayLog)>> = logs
        .iter()
        .map(|log| log.rolling_groups(history_days as usize))
        .collect();
    let jobs: Vec<ServiceJob<'_>> = tenant_ids
        .iter()
        .zip(&groups)
        .flat_map(|(id, tenant_groups)| {
            tenant_groups
                .iter()
                .map(move |&(history, test_day)| ServiceJob {
                    tenant: id,
                    test_day,
                    budget: scenario.budget_for_day(test_day.day()),
                    history: Some(history),
                })
        })
        .collect();

    let started = Instant::now();
    let mut flat = service.replay_concurrent(&jobs)?;
    let wall_seconds = started.elapsed().as_secs_f64();

    // Un-flatten the job-ordered results back into per-tenant day vectors
    // (jobs were emitted tenant-major).
    let mut cycles = Vec::with_capacity(tenants);
    for tenant_groups in &groups {
        let rest = flat.split_off(tenant_groups.len());
        cycles.push(flat);
        flat = rest;
    }

    Ok(ServiceRun {
        name: scenario.name(),
        tenants,
        workers: service.workers(),
        wall_seconds,
        cycles,
    })
}

/// One tenant of a [`TenantFleet`]: its id and the recorded test days a
/// client should stream at the service.
#[derive(Debug, Clone)]
pub struct FleetTenant {
    /// The tenant's service id (`"{scenario}-t{index}"`).
    pub id: TenantId,
    /// The tenant's test days, in day order (history is already registered
    /// on the service).
    pub test_days: Vec<sag_sim::DayLog>,
}

/// A scenario instantiated as a multi-tenant [`AuditService`] plus the
/// per-tenant alert streams to drive at it — the shared setup of the
/// `sag-net` server binary, the network load generator, and the loopback
/// equivalence tests.
///
/// Tenant `t` is named `"{scenario}-t{t}"` and streams days seeded
/// `seed + t`, the same convention as [`run_scenario_service`], so results
/// line up across replay modes. Unlike the batch driver (where rolling
/// history rides on each [`ServiceJob`]), every tenant registers its
/// `history_days` of history up front and all test days replay against
/// that fixed window — the convention a wire client can actually follow,
/// since [`sag_service::Request::OpenDay`] sources history from the
/// service, not the request.
#[derive(Debug)]
pub struct TenantFleet {
    /// The built service, one registered tenant per fleet entry.
    pub service: AuditService,
    /// The fleet, in tenant-index order.
    pub tenants: Vec<FleetTenant>,
}

/// Build a [`TenantFleet`]: `tenants` instances of `scenario`, each with
/// `history_days` of registered history and `test_days` recorded days to
/// stream.
///
/// # Errors
///
/// Propagates service construction and engine-configuration errors.
pub fn tenant_fleet(
    scenario: &dyn Scenario,
    seed: u64,
    tenants: usize,
    history_days: u32,
    test_days: u32,
) -> std::result::Result<TenantFleet, ServiceError> {
    let (builder, fleet) = tenant_fleet_parts(scenario, seed, tenants, history_days, test_days);
    Ok(TenantFleet {
        service: builder.build()?,
        tenants: fleet,
    })
}

/// The unbuilt half of [`tenant_fleet`]: the populated [`ServiceBuilder`]
/// plus the per-tenant streams. Callers that need to decorate the service
/// before building — a WAL directory, a dedup-window size, a recovery
/// (`recover_from`) instead of a fresh build — finish it themselves; the
/// tenant naming and seeding convention stays identical to
/// [`tenant_fleet`], so results remain comparable across entry points.
#[must_use]
pub fn tenant_fleet_parts(
    scenario: &dyn Scenario,
    seed: u64,
    tenants: usize,
    history_days: u32,
    test_days: u32,
) -> (ServiceBuilder, Vec<FleetTenant>) {
    let config = scenario.engine_config();
    let mut builder = AuditService::builder();
    let mut fleet = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let id = TenantId::new(format!("{}-t{t}", scenario.name()));
        let mut days = scenario.generate_days(seed + t as u64, history_days + test_days);
        let test = days.split_off(history_days as usize);
        builder = builder.tenant_with_history(
            id.clone(),
            EngineBuilder::from_config(config.clone()),
            days,
        );
        fleet.push(FleetTenant {
            id,
            test_days: test,
        });
    }
    (builder, fleet)
}

/// The sharded counterpart of [`tenant_fleet_parts`]: the same fleet —
/// identical tenant names, seeds, histories, and test-day streams — loaded
/// into a [`ClusterBuilder`] over `shards` consistent-hashed shards instead
/// of one [`ServiceBuilder`]. Because the naming and seeding convention is
/// shared, a cluster built from these parts must produce per-tenant results
/// bitwise identical to the unsharded fleet's at any shard count; the
/// registry-wide suites in this crate's tests hold it to that.
///
/// Callers finish the builder themselves (`workers`, `counters`,
/// `durable`/`recover_from`, or per-shard `recover_shard`), exactly like
/// the unsharded parts function.
#[must_use]
pub fn tenant_fleet_cluster_parts(
    scenario: &dyn Scenario,
    seed: u64,
    tenants: usize,
    history_days: u32,
    test_days: u32,
    shards: usize,
) -> (ClusterBuilder, Vec<FleetTenant>) {
    let config = scenario.engine_config();
    let mut builder = ClusterBuilder::new(shards);
    let mut fleet = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let id = TenantId::new(format!("{}-t{t}", scenario.name()));
        let mut days = scenario.generate_days(seed + t as u64, history_days + test_days);
        let test = days.split_off(history_days as usize);
        builder = builder.tenant_with_history(
            id.clone(),
            EngineBuilder::from_config(config.clone()),
            days,
        );
        fleet.push(FleetTenant {
            id,
            test_days: test,
        });
    }
    (builder, fleet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{BudgetShocks, PaperBaseline};

    #[test]
    fn baseline_run_produces_one_cycle_per_test_day() {
        let run = run_scenario_sized(&PaperBaseline, 11, 1, 6, 3).unwrap();
        assert_eq!(run.cycles.len(), 3);
        assert!(run.alerts() > 300);
        assert!(run.alerts_per_sec() > 0.0);
        assert!((run.fraction_ossp_not_worse() - 1.0).abs() < 1e-12);
        assert!(run.mean_ossp() >= run.mean_online());
        let totals = run.sse_totals();
        assert_eq!(totals.solves as usize, run.alerts());
        assert!(totals.warm_hit_rate() > 0.5);
    }

    #[test]
    fn streaming_run_matches_the_batch_driver_bitwise() {
        let batch = run_scenario_sized(&PaperBaseline, 19, 1, 5, 2).unwrap();
        let streamed = stream_scenario_sized(&PaperBaseline, 19, 5, 2).unwrap();
        assert_eq!(streamed.push_nanos.len(), batch.alerts());
        assert_eq!(streamed.run.cycles.len(), batch.cycles.len());
        for (s, b) in streamed.run.cycles.iter().zip(&batch.cycles) {
            let mut s = s.clone();
            let mut b = b.clone();
            for o in s.outcomes.iter_mut().chain(b.outcomes.iter_mut()) {
                o.solve_micros = 0;
            }
            assert_eq!(s, b, "day {}", b.day);
        }
    }

    #[test]
    fn service_mode_multiplexes_tenants_and_matches_the_batch_driver() {
        // Three tenants on the baseline regime, concurrent over a 2-worker
        // pool, against three serial single-tenant replays on the same
        // seeds: bitwise identical.
        let service = run_scenario_service(&PaperBaseline, 23, 3, 2, 5, 2).unwrap();
        assert_eq!(service.cycles.len(), 3);
        assert!(service.alerts() > 500);
        assert!(service.alerts_per_sec() > 0.0);
        assert_eq!(service.workers, 2);
        for (t, tenant_cycles) in service.cycles.iter().enumerate() {
            let serial = run_scenario_sized(&PaperBaseline, 23 + t as u64, 1, 5, 2).unwrap();
            assert_eq!(tenant_cycles.len(), serial.cycles.len());
            for (a, b) in tenant_cycles.iter().zip(&serial.cycles) {
                let mut a = a.clone();
                let mut b = b.clone();
                for o in a.outcomes.iter_mut().chain(b.outcomes.iter_mut()) {
                    o.solve_micros = 0;
                }
                assert_eq!(a, b, "tenant {t} day {}", b.day);
            }
        }
    }

    #[test]
    fn budget_shocks_apply_the_schedule() {
        let run = run_scenario_sized(&BudgetShocks, 7, 1, 6, 4).unwrap();
        // Test days are 6..10: 6 % 4 == 2 -> surge (x1.5), 8 % 4 == 0 ->
        // shock (x0.3), 7 and 9 run at the base budget.
        let by_day: Vec<(u32, f64)> = run
            .cycles
            .iter()
            .map(|c| {
                (
                    c.day,
                    c.outcomes.first().map_or(0.0, |o| o.budget_after_ossp),
                )
            })
            .collect();
        for (day, budget_after_first) in by_day {
            let cap = 50.0 * BudgetShocks::budget_multiplier(day);
            assert!(
                budget_after_first <= cap + 1e-9,
                "day {day}: remaining {budget_after_first} exceeds scheduled cap {cap}"
            );
        }
    }
}
