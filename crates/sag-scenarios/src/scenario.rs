//! The [`Scenario`] trait: everything a named workload must describe.

use sag_core::engine::EngineConfig;
use sag_sim::DayLog;

/// A named, fully self-describing workload for the audit-cycle engine.
///
/// A scenario bundles the four axes a deployment regime varies on:
///
/// 1. **Log generation** — the population/arrival process producing the
///    typed alert stream ([`generate_days`](Scenario::generate_days));
/// 2. **Game structure** — the alert catalogue, attacker payoff structure
///    and audit costs, plus the engine knobs (forecast weighting, signal
///    noise) the regime calls for ([`engine_config`](Scenario::engine_config));
/// 3. **Budget schedule** — a per-day budget override for regimes where the
///    audit capacity is not flat ([`budget_for_day`](Scenario::budget_for_day));
/// 4. **Evaluation layout** — how many history days are fitted before each
///    replayed test day ([`history_days`](Scenario::history_days),
///    [`test_days`](Scenario::test_days)).
///
/// Implementations must be deterministic given the seed: the driver relies
/// on it, and the determinism test suite enforces it for every registered
/// scenario.
pub trait Scenario: Send + Sync {
    /// Stable registry name (kebab-case, e.g. `"paper-baseline"`).
    fn name(&self) -> &'static str;

    /// One-line description for reports and the README.
    fn description(&self) -> &'static str;

    /// The engine configuration this scenario is replayed with.
    fn engine_config(&self) -> EngineConfig;

    /// Number of history days fitted before each test day.
    fn history_days(&self) -> u32 {
        10
    }

    /// Number of test days replayed (one rolling group per day).
    fn test_days(&self) -> u32 {
        5
    }

    /// Generate `num_days` consecutive days (indices `0..num_days`) of the
    /// scenario's alert stream. Must be deterministic in `seed`.
    fn generate_days(&self, seed: u64, num_days: u32) -> Vec<DayLog>;

    /// The audit budget for the cycle replayed on `day`, or `None` for the
    /// game's flat budget. `day` is the test day's index in the log.
    fn budget_for_day(&self, day: u32) -> Option<f64> {
        let _ = day;
        None
    }
}
