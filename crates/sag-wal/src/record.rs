//! WAL records: the framed codec and the tail-tolerant scanner.

use crate::{crc32, WalError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sag_sim::binary::{decode_day, encode_day};
use sag_sim::{Alert, AlertTypeId, DayLog, TimeOfDay};

/// Magic number opening every WAL file ("SAGW").
pub const WAL_MAGIC: u32 = 0x5341_4757;

/// Format version this build reads and writes.
pub const WAL_VERSION: u16 = 1;

/// Upper bound on one frame's payload. A real record is a few tens of bytes
/// (or one day log); a length beyond this is corruption, not data.
pub const MAX_RECORD: usize = 1 << 24;

const KIND_OPEN_DAY: u8 = 1;
const KIND_PUSH_ALERT: u8 = 2;
const KIND_FINISH_DAY: u8 = 3;
const KIND_HISTORY_DAY: u8 = 4;

/// One durable mutation of the audit service, as logged before it is
/// acknowledged. The payload carries exactly what replay needs to rebuild
/// the session bitwise — person references are not serialised, matching
/// [`sag_sim::binary`]: the game consumes only `(day, time, type,
/// is_attack)`.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A session was opened for this tenant.
    OpenDay {
        /// The service-unique session id handed out.
        session: u64,
        /// Pinned day index, if the request carried one.
        day: Option<u32>,
        /// Budget override, if the request carried one.
        budget: Option<f64>,
        /// Client request id that produced this record (0 = untagged).
        request_id: u64,
    },
    /// A warning decision was committed for one arriving alert.
    PushAlert {
        /// The session the alert was pushed into.
        session: u64,
        /// The alert, minus person references.
        alert: Alert,
        /// Client request id that produced this record (0 = untagged).
        request_id: u64,
    },
    /// The session was closed and its cycle result returned.
    FinishDay {
        /// The session that finished.
        session: u64,
        /// Client request id that produced this record (0 = untagged).
        request_id: u64,
    },
    /// A finished day was appended to the tenant's rolling history.
    HistoryDay(DayLog),
}

impl WalRecord {
    /// Encode the record's payload (no frame).
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            WalRecord::OpenDay {
                session,
                day,
                budget,
                request_id,
            } => {
                buf.put_u8(KIND_OPEN_DAY);
                buf.put_u64_le(*session);
                let mut flags = 0u8;
                if day.is_some() {
                    flags |= 1;
                }
                if budget.is_some() {
                    flags |= 2;
                }
                buf.put_u8(flags);
                if let Some(day) = day {
                    buf.put_u32_le(*day);
                }
                if let Some(budget) = budget {
                    buf.put_u64_le(budget.to_bits());
                }
                buf.put_u64_le(*request_id);
            }
            WalRecord::PushAlert {
                session,
                alert,
                request_id,
            } => {
                buf.put_u8(KIND_PUSH_ALERT);
                buf.put_u64_le(*session);
                buf.put_u32_le(alert.day);
                buf.put_u32_le(alert.time.seconds());
                buf.put_u16_le(alert.type_id.0);
                buf.put_u8(u8::from(alert.is_attack));
                buf.put_u64_le(*request_id);
            }
            WalRecord::FinishDay {
                session,
                request_id,
            } => {
                buf.put_u8(KIND_FINISH_DAY);
                buf.put_u64_le(*session);
                buf.put_u64_le(*request_id);
            }
            WalRecord::HistoryDay(day) => {
                buf.put_u8(KIND_HISTORY_DAY);
                buf.extend_from_slice(&encode_day(day));
            }
        }
        buf.to_vec()
    }

    /// Encode the record as one complete frame:
    /// `len:u32 crc:u32 payload[len]`.
    #[must_use]
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut buf = BytesMut::with_capacity(8 + payload.len());
        buf.put_u32_le(payload.len() as u32);
        buf.put_u32_le(crc32(&payload));
        buf.extend_from_slice(&payload);
        buf.to_vec()
    }

    fn decode_payload(payload: &[u8], file: &str, offset: u64) -> Result<WalRecord, WalError> {
        let invalid = |reason: &str| WalError::InvalidRecord {
            file: file.to_string(),
            offset,
            reason: reason.to_string(),
        };
        let mut buf = Bytes::from(payload.to_vec());
        if buf.remaining() < 1 {
            return Err(invalid("empty payload"));
        }
        let kind = buf.get_u8();
        match kind {
            KIND_OPEN_DAY => {
                if buf.remaining() < 9 {
                    return Err(invalid("short OpenDay body"));
                }
                let session = buf.get_u64_le();
                let flags = buf.get_u8();
                let day = if flags & 1 != 0 {
                    if buf.remaining() < 4 {
                        return Err(invalid("short OpenDay day field"));
                    }
                    Some(buf.get_u32_le())
                } else {
                    None
                };
                let budget = if flags & 2 != 0 {
                    if buf.remaining() < 8 {
                        return Err(invalid("short OpenDay budget field"));
                    }
                    Some(f64::from_bits(buf.get_u64_le()))
                } else {
                    None
                };
                Ok(WalRecord::OpenDay {
                    session,
                    day,
                    budget,
                    request_id: read_request_id(&mut buf),
                })
            }
            KIND_PUSH_ALERT => {
                if buf.remaining() < 19 {
                    return Err(invalid("short PushAlert body"));
                }
                let session = buf.get_u64_le();
                let day = buf.get_u32_le();
                let seconds = buf.get_u32_le();
                let type_id = buf.get_u16_le();
                let flags = buf.get_u8();
                Ok(WalRecord::PushAlert {
                    session,
                    alert: Alert {
                        day,
                        time: TimeOfDay::from_seconds(seconds),
                        type_id: AlertTypeId(type_id),
                        employee: None,
                        patient: None,
                        is_attack: flags & 1 != 0,
                    },
                    request_id: read_request_id(&mut buf),
                })
            }
            KIND_FINISH_DAY => {
                if buf.remaining() < 8 {
                    return Err(invalid("short FinishDay body"));
                }
                let session = buf.get_u64_le();
                Ok(WalRecord::FinishDay {
                    session,
                    request_id: read_request_id(&mut buf),
                })
            }
            KIND_HISTORY_DAY => {
                let day = decode_day(&mut buf)
                    .map_err(|e| invalid(&format!("malformed embedded day log: {e}")))?;
                Ok(WalRecord::HistoryDay(day))
            }
            other => Err(invalid(&format!("unknown record kind {other}"))),
        }
    }
}

/// Read the trailing request id, tolerating its absence: logs written
/// before ids existed simply end where the id would start, and decode as
/// the untagged sentinel 0. The frame CRC already vouches for the bytes,
/// so leniency here cannot mask corruption.
fn read_request_id(buf: &mut Bytes) -> u64 {
    if buf.remaining() >= 8 {
        buf.get_u64_le()
    } else {
        0
    }
}

/// Encode a WAL file header for `tenant`.
///
/// # Panics
///
/// Panics if the tenant name exceeds `u16::MAX` bytes.
#[must_use]
pub fn encode_wal_header(tenant: &str) -> Vec<u8> {
    assert!(
        tenant.len() <= usize::from(u16::MAX),
        "tenant name too long"
    );
    let mut buf = BytesMut::with_capacity(8 + tenant.len());
    buf.put_u32_le(WAL_MAGIC);
    buf.put_u16_le(WAL_VERSION);
    buf.put_u16_le(tenant.len() as u16);
    buf.extend_from_slice(tenant.as_bytes());
    buf.to_vec()
}

/// Parse a WAL header. `Ok(None)` means the file ends inside the header —
/// a crash during log creation, before any record could have been
/// acknowledged; callers may rewrite the header and carry on.
///
/// # Errors
///
/// [`WalError::BadMagic`] / [`WalError::VersionMismatch`] /
/// [`WalError::InvalidRecord`] when the header bytes present are wrong
/// rather than missing.
pub fn decode_wal_header(bytes: &[u8], file: &str) -> Result<Option<(String, usize)>, WalError> {
    if bytes.len() < 4 {
        return Ok(None);
    }
    let mut buf = Bytes::from(bytes[..bytes.len().min(8)].to_vec());
    let magic = buf.get_u32_le();
    if magic != WAL_MAGIC {
        return Err(WalError::BadMagic {
            file: file.to_string(),
            found: magic,
        });
    }
    if bytes.len() < 6 {
        return Ok(None);
    }
    let version = buf.get_u16_le();
    if version != WAL_VERSION {
        return Err(WalError::VersionMismatch {
            file: file.to_string(),
            found: version,
            expected: WAL_VERSION,
        });
    }
    if bytes.len() < 8 {
        return Ok(None);
    }
    let tenant_len = usize::from(buf.get_u16_le());
    if bytes.len() < 8 + tenant_len {
        return Ok(None);
    }
    let tenant =
        std::str::from_utf8(&bytes[8..8 + tenant_len]).map_err(|_| WalError::InvalidRecord {
            file: file.to_string(),
            offset: 8,
            reason: "tenant name is not UTF-8".to_string(),
        })?;
    Ok(Some((tenant.to_string(), 8 + tenant_len)))
}

/// The result of scanning one WAL file: every complete, checksummed record
/// in order, plus what the scan had to tolerate at the tail.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Tenant recorded in the header; `None` when the header itself was
    /// torn (which also implies no records).
    pub tenant: Option<String>,
    /// Every complete record, in append order.
    pub records: Vec<WalRecord>,
    /// Whether an incomplete final frame (torn write / truncated tail) was
    /// discarded.
    pub torn_tail: bool,
}

/// Scan a WAL file's bytes, tolerating a torn tail.
///
/// The tail rules mirror what a crashed append can physically leave
/// behind — a *prefix* of one frame at the end of the file:
///
/// * fewer than 8 bytes of frame header left → torn tail, discarded;
/// * declared length overruns the end of file → torn tail, discarded;
/// * CRC mismatch on a frame that ends exactly at EOF → torn tail,
///   discarded;
/// * CRC mismatch on any earlier frame → [`WalError::CorruptChecksum`]
///   (a torn write cannot corrupt a record with data after it).
///
/// # Errors
///
/// Header errors from [`decode_wal_header`], [`WalError::CorruptChecksum`]
/// for mid-file corruption, and [`WalError::InvalidRecord`] for a frame
/// that checksums correctly but does not decode.
pub fn read_wal(bytes: &[u8], file: &str) -> Result<WalScan, WalError> {
    let Some((tenant, header_len)) = decode_wal_header(bytes, file)? else {
        return Ok(WalScan {
            tenant: None,
            records: Vec::new(),
            torn_tail: !bytes.is_empty(),
        });
    };
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut offset = header_len;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 8 {
            torn_tail = true;
            break;
        }
        let mut head = Bytes::from(bytes[offset..offset + 8].to_vec());
        let len = head.get_u32_le() as usize;
        let crc = head.get_u32_le();
        if len > remaining - 8 {
            // The frame claims more bytes than the file holds. Either the
            // length field itself is a torn prefix or the payload is; both
            // are the expected signature of a crashed append.
            torn_tail = true;
            break;
        }
        if len > MAX_RECORD {
            return Err(WalError::InvalidRecord {
                file: file.to_string(),
                offset: offset as u64,
                reason: format!("oversized frame ({len} bytes)"),
            });
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        if crc32(payload) != crc {
            if offset + 8 + len == bytes.len() {
                // Final frame: a torn write that stopped inside the payload
                // after the full length happened to be there, or a tear
                // within the last sector. Discard it.
                torn_tail = true;
                break;
            }
            return Err(WalError::CorruptChecksum {
                file: file.to_string(),
                offset: offset as u64,
            });
        }
        records.push(WalRecord::decode_payload(payload, file, offset as u64)?);
        offset += 8 + len;
    }
    Ok(WalScan {
        tenant: Some(tenant),
        records,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_sim::{StreamConfig, StreamGenerator};

    fn sample_records() -> Vec<WalRecord> {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(5));
        let day = gen.generate_day(3);
        let alert = day.alerts()[0];
        vec![
            WalRecord::OpenDay {
                session: 7,
                day: Some(3),
                budget: Some(12.5),
                request_id: 41,
            },
            WalRecord::OpenDay {
                session: 8,
                day: None,
                budget: None,
                request_id: 0,
            },
            WalRecord::PushAlert {
                session: 7,
                alert,
                request_id: 42,
            },
            WalRecord::FinishDay {
                session: 7,
                request_id: 43,
            },
            WalRecord::HistoryDay(day),
        ]
    }

    fn wal_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = encode_wal_header("icu");
        for record in records {
            bytes.extend_from_slice(&record.encode_framed());
        }
        bytes
    }

    #[test]
    fn records_round_trip_through_frames() {
        let records = sample_records();
        let scan = read_wal(&wal_bytes(&records), "icu.wal").unwrap();
        assert_eq!(scan.tenant.as_deref(), Some("icu"));
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), records.len());
        for (a, b) in records.iter().zip(&scan.records) {
            match (a, b) {
                // Person references are intentionally dropped in the codec.
                (
                    WalRecord::PushAlert {
                        session,
                        alert,
                        request_id,
                    },
                    WalRecord::PushAlert {
                        session: s2,
                        alert: a2,
                        request_id: r2,
                    },
                ) => {
                    assert_eq!(session, s2);
                    assert_eq!(request_id, r2);
                    assert_eq!(alert.day, a2.day);
                    assert_eq!(alert.time, a2.time);
                    assert_eq!(alert.type_id, a2.type_id);
                    assert_eq!(alert.is_attack, a2.is_attack);
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn every_possible_torn_prefix_is_tolerated() {
        let records = sample_records();
        let full = wal_bytes(&records);
        let header_len = encode_wal_header("icu").len();
        // Every strict prefix of the file is what some crash could leave.
        for cut in 0..full.len() {
            let scan = read_wal(&full[..cut], "icu.wal").unwrap();
            if cut < header_len {
                assert_eq!(scan.tenant, None, "cut={cut}");
                assert!(scan.records.is_empty());
            } else {
                assert_eq!(scan.tenant.as_deref(), Some("icu"));
                // Only whole frames survive; the torn flag fires unless the
                // cut lands exactly on a frame boundary.
                let mut boundary = header_len;
                let mut whole = 0;
                for record in &records {
                    let next = boundary + record.encode_framed().len();
                    if next > cut {
                        break;
                    }
                    boundary = next;
                    whole += 1;
                }
                assert_eq!(scan.records.len(), whole, "cut={cut}");
                assert_eq!(scan.torn_tail, cut != boundary, "cut={cut}");
            }
        }
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error_but_tail_corruption_is_torn() {
        let records = sample_records();
        let mut bytes = wal_bytes(&records);
        let header_len = encode_wal_header("icu").len();

        // Flip a payload byte in the FIRST frame: corruption before the
        // tail must refuse to replay.
        let mut corrupt = bytes.clone();
        corrupt[header_len + 8] ^= 0xFF;
        let err = read_wal(&corrupt, "icu.wal").unwrap_err();
        assert!(
            matches!(err, WalError::CorruptChecksum { offset, .. } if offset == header_len as u64),
            "{err:?}"
        );

        // Flip a byte in the LAST frame's payload: indistinguishable from a
        // sector tear, discarded as the torn tail.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let scan = read_wal(&bytes, "icu.wal").unwrap();
        assert_eq!(scan.records.len(), records.len() - 1);
        assert!(scan.torn_tail);
    }

    #[test]
    fn header_problems_are_structured() {
        let err = read_wal(b"NOTAWAL\x00\x00\x00\x00\x00", "x.wal").unwrap_err();
        assert!(matches!(err, WalError::BadMagic { .. }), "{err:?}");

        let mut wrong_version = encode_wal_header("t");
        wrong_version[4] = 99;
        let err = read_wal(&wrong_version, "t.wal").unwrap_err();
        assert!(
            matches!(
                err,
                WalError::VersionMismatch {
                    found: 99,
                    expected: WAL_VERSION,
                    ..
                }
            ),
            "{err:?}"
        );

        // An empty file is a valid "nothing yet" state, not torn.
        let scan = read_wal(b"", "t.wal").unwrap();
        assert_eq!(scan.tenant, None);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn records_without_a_trailing_id_decode_as_untagged() {
        // Hand-build the pre-request-id payload layouts: logs written by
        // older builds must keep replaying, with the id defaulting to 0.
        let mut open = BytesMut::with_capacity(32);
        open.put_u8(KIND_OPEN_DAY);
        open.put_u64_le(7);
        open.put_u8(3); // day + budget present
        open.put_u32_le(5);
        open.put_u64_le(12.5f64.to_bits());
        let mut finish = BytesMut::with_capacity(16);
        finish.put_u8(KIND_FINISH_DAY);
        finish.put_u64_le(7);

        let mut bytes = encode_wal_header("t");
        for payload in [&open[..], &finish[..]] {
            let mut frame = BytesMut::with_capacity(8 + payload.len());
            frame.put_u32_le(payload.len() as u32);
            frame.put_u32_le(crc32(payload));
            frame.extend_from_slice(payload);
            bytes.extend_from_slice(&frame);
        }
        let scan = read_wal(&bytes, "t.wal").unwrap();
        assert_eq!(
            scan.records,
            vec![
                WalRecord::OpenDay {
                    session: 7,
                    day: Some(5),
                    budget: Some(12.5),
                    request_id: 0,
                },
                WalRecord::FinishDay {
                    session: 7,
                    request_id: 0,
                },
            ]
        );
    }

    #[test]
    fn valid_checksum_with_garbage_payload_is_invalid_record() {
        let mut bytes = encode_wal_header("t");
        let payload = [42u8, 1, 2, 3];
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.extend_from_slice(&payload);
        bytes.extend_from_slice(&frame);
        // A trailing valid record proves the garbage frame is not the tail.
        bytes.extend_from_slice(
            &WalRecord::FinishDay {
                session: 1,
                request_id: 0,
            }
            .encode_framed(),
        );
        let err = read_wal(&bytes, "t.wal").unwrap_err();
        assert!(
            matches!(err, WalError::InvalidRecord { ref reason, .. } if reason.contains("unknown record kind")),
            "{err:?}"
        );
    }
}
