//! Tenant snapshots: the periodic full-state copy that lets the WAL be
//! truncated.

use crate::{crc32, WalError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sag_sim::binary::{decode_day, encode_day};
use sag_sim::DayLog;

/// Magic number opening every snapshot file ("SAGS").
pub const SNAPSHOT_MAGIC: u32 = 0x5341_4753;

/// Everything the service must retain about a tenant when its WAL is
/// truncated: the rolling history window and the session-id counter (ids
/// are never reused, so the counter must survive restarts).
///
/// Snapshots are written atomically (temp file + rename by
/// [`crate::DirFs`]), so unlike the WAL they are *never* expected to be
/// torn: any decode failure is a hard error.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The tenant this snapshot belongs to.
    pub tenant: String,
    /// The service's next-session counter at snapshot time.
    pub next_session: u64,
    /// Byte length of the tenant's WAL this snapshot supersedes. A
    /// snapshot is written first and the WAL truncated second; if a crash
    /// lands between the two, recovery recognises the stale WAL by this
    /// length plus [`wal_crc`](Self::wal_crc) and finishes the truncation
    /// instead of replaying days the snapshot already contains.
    pub wal_len: u64,
    /// CRC-32 of the superseded WAL bytes (see [`wal_len`](Self::wal_len)).
    pub wal_crc: u32,
    /// The tenant's rolling history window, oldest day first.
    pub history: Vec<DayLog>,
}

impl Snapshot {
    /// Encode the snapshot, CRC-sealed.
    ///
    /// # Panics
    ///
    /// Panics if the tenant name exceeds `u16::MAX` bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.tenant.len() <= usize::from(u16::MAX),
            "tenant name too long"
        );
        let mut buf = BytesMut::with_capacity(32 + self.history.len() * 64);
        buf.put_u32_le(SNAPSHOT_MAGIC);
        buf.put_u16_le(crate::WAL_VERSION);
        buf.put_u16_le(self.tenant.len() as u16);
        buf.extend_from_slice(self.tenant.as_bytes());
        buf.put_u64_le(self.next_session);
        buf.put_u64_le(self.wal_len);
        buf.put_u32_le(self.wal_crc);
        buf.put_u32_le(self.history.len() as u32);
        for day in &self.history {
            buf.extend_from_slice(&encode_day(day));
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Decode and verify a snapshot file.
    ///
    /// # Errors
    ///
    /// [`WalError::BadMagic`], [`WalError::VersionMismatch`],
    /// [`WalError::Truncated`] when the structure ends early, and
    /// [`WalError::CorruptChecksum`] when the sealing CRC does not match.
    pub fn decode(bytes: &[u8], file: &str) -> Result<Snapshot, WalError> {
        let truncated = || WalError::Truncated {
            file: file.to_string(),
        };
        if bytes.len() < 12 {
            return Err(truncated());
        }
        // Verify the seal first: everything else assumes intact bytes.
        let body = &bytes[..bytes.len() - 4];
        let mut tail = Bytes::from(bytes[bytes.len() - 4..].to_vec());
        if crc32(body) != tail.get_u32_le() {
            return Err(WalError::CorruptChecksum {
                file: file.to_string(),
                offset: 0,
            });
        }
        let mut buf = Bytes::from(body.to_vec());
        let magic = buf.get_u32_le();
        if magic != SNAPSHOT_MAGIC {
            return Err(WalError::BadMagic {
                file: file.to_string(),
                found: magic,
            });
        }
        let version = buf.get_u16_le();
        if version != crate::WAL_VERSION {
            return Err(WalError::VersionMismatch {
                file: file.to_string(),
                found: version,
                expected: crate::WAL_VERSION,
            });
        }
        let tenant_len = usize::from(buf.get_u16_le());
        if buf.remaining() < tenant_len + 24 {
            return Err(truncated());
        }
        let mut tenant_bytes = vec![0u8; tenant_len];
        buf.copy_to_slice(&mut tenant_bytes);
        let tenant = String::from_utf8(tenant_bytes).map_err(|_| WalError::InvalidRecord {
            file: file.to_string(),
            offset: 8,
            reason: "tenant name is not UTF-8".to_string(),
        })?;
        let next_session = buf.get_u64_le();
        let wal_len = buf.get_u64_le();
        let wal_crc = buf.get_u32_le();
        let num_days = buf.get_u32_le() as usize;
        let mut history = Vec::with_capacity(num_days);
        for _ in 0..num_days {
            history.push(decode_day(&mut buf).map_err(|_| truncated())?);
        }
        Ok(Snapshot {
            tenant,
            next_session,
            wal_len,
            wal_crc,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sag_sim::{StreamConfig, StreamGenerator};

    fn sample() -> Snapshot {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(4));
        Snapshot {
            tenant: "ward 7".to_string(),
            next_session: 42,
            wal_len: 123,
            wal_crc: 0xABCD_EF01,
            history: gen.generate_days(3),
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode(), "w.snap").unwrap();
        assert_eq!(decoded.tenant, snap.tenant);
        assert_eq!(decoded.next_session, snap.next_session);
        assert_eq!(decoded.wal_len, snap.wal_len);
        assert_eq!(decoded.wal_crc, snap.wal_crc);
        assert_eq!(decoded.history.len(), snap.history.len());
        for (a, b) in snap.history.iter().zip(&decoded.history) {
            assert_eq!(a.day(), b.day());
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn any_truncation_or_bitflip_is_rejected() {
        let bytes = sample().encode();
        // Truncations: either too short outright or a broken seal.
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = Snapshot::decode(&bytes[..cut], "w.snap").unwrap_err();
            assert!(
                matches!(
                    err,
                    WalError::Truncated { .. } | WalError::CorruptChecksum { .. }
                ),
                "cut={cut}: {err:?}"
            );
        }
        // A flipped byte anywhere breaks the seal.
        for at in [0, 6, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x01;
            let err = Snapshot::decode(&corrupt, "w.snap").unwrap_err();
            assert!(
                matches!(err, WalError::CorruptChecksum { .. }),
                "at={at}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_structured() {
        let mut snap = sample();
        snap.tenant = "t".to_string();
        let good = snap.encode();

        // Re-seal with a wrong magic so the CRC passes but the magic fails.
        let mut wrong_magic = good.clone();
        wrong_magic[0] ^= 0xFF;
        let body_len = wrong_magic.len() - 4;
        let crc = crate::crc32(&wrong_magic[..body_len]).to_le_bytes();
        wrong_magic[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            Snapshot::decode(&wrong_magic, "t.snap").unwrap_err(),
            WalError::BadMagic { .. }
        ));

        let mut wrong_version = good;
        wrong_version[4] = 0xEE;
        let body_len = wrong_version.len() - 4;
        let crc = crate::crc32(&wrong_version[..body_len]).to_le_bytes();
        wrong_version[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            Snapshot::decode(&wrong_version, "t.snap").unwrap_err(),
            WalError::VersionMismatch { found: 0xEE, .. }
        ));
    }
}
