//! # sag-wal — crash-safe durability substrate for the SAG service
//!
//! The audit game's signaling guarantee is a *commitment*: once the service
//! acknowledged a [`PushAlert`](WalRecord::PushAlert) decision, forgetting it
//! on restart silently breaks the promise the auditor made to the attacker.
//! This crate supplies the machinery the service layer uses to never forget:
//!
//! * [`WalRecord`] — the per-tenant log records (`OpenDay` / `PushAlert` /
//!   `FinishDay` / `HistoryDay`), encoded as length-prefixed, CRC-framed
//!   entries in an append-only log. Torn writes and truncated tails are
//!   recognised and the incomplete final record is discarded on replay;
//!   corruption *before* the tail is a hard [`WalError`].
//! * [`Snapshot`] — a periodic full copy of a tenant's rolling history plus
//!   the service's session-id counter, written atomically (temp + rename)
//!   so the WAL can be truncated.
//! * [`WalFs`] — the storage seam: [`DirFs`] appends to real files (with
//!   optional fsync), [`MemFs`] keeps everything in shared memory for fast
//!   tests, and [`FailpointFs`] wraps any of them to kill a scripted write
//!   after a scripted byte offset — the deterministic fault-injection
//!   harness behind the crash-at-every-alert-index property tests.
//!
//! The crate is deliberately mechanism-only: it knows how to frame, scan,
//! snapshot and fail, but not what the records *mean*. Interpretation —
//! logging before acknowledging, replaying a snapshot + WAL tail back into
//! bitwise-identical open sessions — lives in `sag-service`
//! (`ServiceBuilder::recover_from`).
//!
//! ## On-disk format
//!
//! ```text
//! wal file   := header frame*
//! header     := magic:u32 ("SAGW") version:u16 tenant_len:u16 tenant_utf8
//! frame      := len:u32 crc:u32 payload[len]        (crc = CRC-32/IEEE of payload)
//! snap file  := magic:u32 ("SAGS") version:u16 tenant_len:u16 tenant_utf8
//!               next_session:u64 num_days:u32 day{num_days} crc:u32
//! ```
//!
//! All integers are little-endian; `day` reuses `sag_sim::binary::encode_day`.

#![forbid(unsafe_code)]

pub mod error;
pub mod fs;
pub mod record;
pub mod snapshot;

pub use error::WalError;
pub use fs::{DirFs, FailpointFs, MemFs, WalFs};
pub use record::{
    decode_wal_header, encode_wal_header, read_wal, WalRecord, WalScan, MAX_RECORD, WAL_MAGIC,
    WAL_VERSION,
};
pub use snapshot::{Snapshot, SNAPSHOT_MAGIC};

/// Result alias for fallible WAL operations.
pub type Result<T> = std::result::Result<T, WalError>;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, built at
/// compile time. Hand-rolled because the workspace vendors its own
/// dependency surface.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) checksum of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    !data.iter().fold(!0u32, |crc, &byte| {
        (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize]
    })
}

/// Map a tenant name to a filesystem-safe stem: alphanumerics, `-` and `_`
/// pass through; every other byte becomes `%XX`. Injective, so two distinct
/// tenant names can never collide on one file.
#[must_use]
pub fn sanitize_tenant(tenant: &str) -> String {
    let mut out = String::with_capacity(tenant.len());
    for byte in tenant.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(byte as char),
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// Best-effort inverse of [`sanitize_tenant`], for naming the culprit in
/// errors about files no registered tenant owns. Undecodable escapes pass
/// through verbatim.
#[must_use]
pub fn unsanitize_tenant(stem: &str) -> String {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let Some(hex) = stem.get(i + 1..i + 3) {
                if let Ok(byte) = u8::from_str_radix(hex, 16) {
                    out.push(byte);
                    i += 3;
                    continue;
                }
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The WAL file name for a tenant.
#[must_use]
pub fn wal_file_name(tenant: &str) -> String {
    format!("{}.wal", sanitize_tenant(tenant))
}

/// The snapshot file name for a tenant.
#[must_use]
pub fn snapshot_file_name(tenant: &str) -> String {
    format!("{}.snap", sanitize_tenant(tenant))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sanitize_is_injective_and_invertible_on_odd_names() {
        for name in ["plain", "has space", "slash/../..", "per%cent", "ünïcode"] {
            let stem = sanitize_tenant(name);
            assert!(
                stem.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "{stem}"
            );
            assert_eq!(unsanitize_tenant(&stem), name);
        }
        assert_ne!(sanitize_tenant("a b"), sanitize_tenant("a_b"));
        assert_eq!(wal_file_name("a b"), "a%20b.wal");
        assert_eq!(snapshot_file_name("x"), "x.snap");
    }
}
