//! The storage seam: [`WalFs`] and its three implementations.
//!
//! The service logs through a `Box<dyn WalFs>`, so the same recovery code
//! path runs against real files ([`DirFs`]), a shared in-memory store
//! ([`MemFs`]), and a scripted crash ([`FailpointFs`]). Fault-injection
//! tests build the exact byte stream a killed process leaves behind —
//! including a half-written final frame — without touching a disk.

use crate::WalError;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Append-only file storage as the WAL needs it: named flat files, append,
/// durability barrier, atomic whole-file replace, read-back and listing.
///
/// Implementations must be `Send` so a durable service stays movable across
/// threads.
pub trait WalFs: std::fmt::Debug + Send {
    /// Append `bytes` to `file`, creating it if missing.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the storage fails (possibly mid-write: a
    /// prefix of `bytes` may have landed — exactly a torn write).
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError>;

    /// Durability barrier: block until `file`'s appended bytes are on
    /// stable storage. No-op for memory-backed implementations.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the storage fails.
    fn sync(&mut self, file: &str) -> Result<(), WalError>;

    /// Atomically replace `file`'s contents with `bytes`: observers see
    /// either the old content or the new, never a mixture.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the storage fails.
    fn replace(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError>;

    /// The full contents of `file`, or `None` if it does not exist.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the storage fails.
    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, WalError>;

    /// Names of all files present (arbitrary order).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the storage fails.
    fn list(&self) -> Result<Vec<String>, WalError>;

    /// Delete `file` if it exists.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the storage fails.
    fn remove(&mut self, file: &str) -> Result<(), WalError>;
}

/// Real-directory storage: one flat directory, appends through cached file
/// handles, `replace` via temp file + rename (atomic on POSIX), `sync` via
/// `File::sync_all`.
#[derive(Debug)]
pub struct DirFs {
    dir: PathBuf,
    handles: HashMap<String, File>,
}

impl DirFs {
    /// Open (creating if needed) the directory at `dir`.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| WalError::io(dir.display().to_string(), &e))?;
        Ok(DirFs {
            dir,
            handles: HashMap::new(),
        })
    }

    /// The directory this store writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn handle(&mut self, file: &str) -> Result<&mut File, WalError> {
        if !self.handles.contains_key(file) {
            let path = self.dir.join(file);
            let handle = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| WalError::io(file, &e))?;
            self.handles.insert(file.to_string(), handle);
        }
        Ok(self.handles.get_mut(file).expect("handle just inserted"))
    }
}

impl WalFs for DirFs {
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.handle(file)?
            .write_all(bytes)
            .map_err(|e| WalError::io(file, &e))
    }

    fn sync(&mut self, file: &str) -> Result<(), WalError> {
        self.handle(file)?
            .sync_all()
            .map_err(|e| WalError::io(file, &e))
    }

    fn replace(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        // Drop the cached append handle: after the rename it would keep
        // writing into the unlinked old inode.
        self.handles.remove(file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        let target = self.dir.join(file);
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &target)
        };
        write().map_err(|e| WalError::io(file, &e))
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, WalError> {
        match std::fs::read(self.dir.join(file)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(WalError::io(file, &e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| WalError::io(self.dir.display().to_string(), &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| WalError::io(self.dir.display().to_string(), &e))?;
            let is_file = entry
                .file_type()
                .map_err(|e| WalError::io(self.dir.display().to_string(), &e))?
                .is_file();
            if is_file {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&mut self, file: &str) -> Result<(), WalError> {
        self.handles.remove(file);
        match std::fs::remove_file(self.dir.join(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(WalError::io(file, &e)),
        }
    }
}

/// Shared in-memory storage. `Clone` shares the underlying store, so a test
/// can keep one handle, hand a clone to a service, "crash" the service by
/// dropping it, and recover a fresh service from the surviving handle.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    store: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemFs {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Total bytes held across all files (for bench reporting).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.store
            .lock()
            .expect("wal store poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Overwrite `file` with raw `bytes` — for tests that hand-corrupt
    /// specific offsets.
    pub fn put(&mut self, file: &str, bytes: Vec<u8>) {
        self.store
            .lock()
            .expect("wal store poisoned")
            .insert(file.to_string(), bytes);
    }
}

impl WalFs for MemFs {
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.store
            .lock()
            .expect("wal store poisoned")
            .entry(file.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, _file: &str) -> Result<(), WalError> {
        Ok(())
    }

    fn replace(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.put(file, bytes.to_vec());
        Ok(())
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, WalError> {
        Ok(self
            .store
            .lock()
            .expect("wal store poisoned")
            .get(file)
            .cloned())
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        let mut names: Vec<String> = self
            .store
            .lock()
            .expect("wal store poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        Ok(names)
    }

    fn remove(&mut self, file: &str) -> Result<(), WalError> {
        self.store.lock().expect("wal store poisoned").remove(file);
        Ok(())
    }
}

/// Deterministic fault injection: wraps any [`WalFs`] and kills a scripted
/// append after a scripted byte offset, writing only that prefix — exactly
/// the torn write a power loss leaves behind. After the kill fires, every
/// further operation fails, like a process that is gone.
///
/// ```
/// use sag_wal::{FailpointFs, MemFs, WalFs};
///
/// let mut fs = FailpointFs::new(MemFs::new()).kill_at_append(1, 3);
/// fs.append("t.wal", b"first").unwrap();           // append #0: untouched
/// assert!(fs.append("t.wal", b"second").is_err()); // append #1: 3 bytes land
/// assert!(fs.crashed());
/// let inner = fs.into_inner();
/// assert_eq!(inner.read("t.wal").unwrap().unwrap(), b"firstsec");
/// ```
#[derive(Debug)]
pub struct FailpointFs<F: WalFs> {
    inner: F,
    /// Kill at this 0-based append index, or `None` for no failpoint.
    kill_index: Option<u64>,
    /// Bytes of the doomed append that still land.
    kill_offset: usize,
    appends_seen: u64,
    crashed: bool,
}

impl<F: WalFs> FailpointFs<F> {
    /// Wrap `inner` with no failpoint armed.
    #[must_use]
    pub fn new(inner: F) -> Self {
        FailpointFs {
            inner,
            kill_index: None,
            kill_offset: 0,
            appends_seen: 0,
            crashed: false,
        }
    }

    /// Arm the failpoint: the `index`-th append (0-based, counted across
    /// all files) writes only its first `offset` bytes, then the "process"
    /// dies.
    #[must_use]
    pub fn kill_at_append(mut self, index: u64, offset: usize) -> Self {
        self.kill_index = Some(index);
        self.kill_offset = offset;
        self
    }

    /// Whether the scripted crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Appends observed so far (the next append's index).
    #[must_use]
    pub fn appends_seen(&self) -> u64 {
        self.appends_seen
    }

    /// Unwrap the surviving storage, as recovery would see it.
    #[must_use]
    pub fn into_inner(self) -> F {
        self.inner
    }

    fn check_alive(&self, file: &str) -> Result<(), WalError> {
        if self.crashed {
            return Err(WalError::Io {
                file: file.to_string(),
                message: "injected crash: process is down".to_string(),
            });
        }
        Ok(())
    }
}

impl<F: WalFs> WalFs for FailpointFs<F> {
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.check_alive(file)?;
        let index = self.appends_seen;
        self.appends_seen += 1;
        if self.kill_index == Some(index) {
            let torn = &bytes[..self.kill_offset.min(bytes.len())];
            if !torn.is_empty() {
                self.inner.append(file, torn)?;
            }
            self.crashed = true;
            return Err(WalError::Io {
                file: file.to_string(),
                message: format!(
                    "injected crash at append #{index} after {} of {} bytes",
                    torn.len(),
                    bytes.len()
                ),
            });
        }
        self.inner.append(file, bytes)
    }

    fn sync(&mut self, file: &str) -> Result<(), WalError> {
        self.check_alive(file)?;
        self.inner.sync(file)
    }

    fn replace(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.check_alive(file)?;
        self.inner.replace(file, bytes)
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, WalError> {
        self.check_alive(file)?;
        self.inner.read(file)
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        self.check_alive("")?;
        self.inner.list()
    }

    fn remove(&mut self, file: &str) -> Result<(), WalError> {
        self.check_alive(file)?;
        self.inner.remove(file)
    }
}

impl WalFs for Box<dyn WalFs> {
    fn append(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        (**self).append(file, bytes)
    }

    fn sync(&mut self, file: &str) -> Result<(), WalError> {
        (**self).sync(file)
    }

    fn replace(&mut self, file: &str, bytes: &[u8]) -> Result<(), WalError> {
        (**self).replace(file, bytes)
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, WalError> {
        (**self).read(file)
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        (**self).list()
    }

    fn remove(&mut self, file: &str) -> Result<(), WalError> {
        (**self).remove(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_clone_shares_the_store_and_appends_accumulate() {
        let mut a = MemFs::new();
        let b = a.clone();
        a.append("t.wal", b"ab").unwrap();
        a.append("t.wal", b"cd").unwrap();
        assert_eq!(b.read("t.wal").unwrap().unwrap(), b"abcd");
        assert_eq!(b.total_bytes(), 4);
        a.replace("t.wal", b"z").unwrap();
        assert_eq!(b.read("t.wal").unwrap().unwrap(), b"z");
        assert_eq!(b.list().unwrap(), vec!["t.wal".to_string()]);
        a.remove("t.wal").unwrap();
        assert_eq!(b.read("t.wal").unwrap(), None);
        a.remove("t.wal").unwrap();
    }

    #[test]
    fn failpoint_tears_the_scripted_append_and_stays_dead() {
        let mut fs = FailpointFs::new(MemFs::new()).kill_at_append(2, 1);
        fs.append("a", b"one").unwrap();
        fs.append("b", b"two").unwrap();
        assert!(!fs.crashed());
        let err = fs.append("a", b"three").unwrap_err();
        assert!(matches!(err, WalError::Io { .. }), "{err:?}");
        assert!(fs.crashed());
        assert!(fs.append("a", b"x").is_err());
        assert!(fs.sync("a").is_err());
        assert!(fs.read("a").is_err());
        assert!(fs.list().is_err());
        let inner = fs.into_inner();
        assert_eq!(inner.read("a").unwrap().unwrap(), b"onet");
        assert_eq!(inner.read("b").unwrap().unwrap(), b"two");
    }

    #[test]
    fn failpoint_offset_zero_loses_the_whole_append() {
        let mut fs = FailpointFs::new(MemFs::new()).kill_at_append(0, 0);
        assert!(fs.append("a", b"gone").is_err());
        assert_eq!(fs.into_inner().read("a").unwrap(), None);
    }
}
