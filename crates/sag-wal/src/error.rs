//! The structured [`WalError`] taxonomy.

use std::fmt;

/// Why a WAL or snapshot operation failed.
///
/// `#[non_exhaustive]`, like every public error enum in the workspace:
/// match with a wildcard arm. The variants separate what recovery must
/// distinguish: *torn tails* (an incomplete final record — expected after a
/// crash, tolerated by discarding it) never surface as errors at all, while
/// everything here means the log cannot be trusted and the operator must
/// intervene.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalError {
    /// The storage layer failed (or a [`crate::FailpointFs`] injected a
    /// crash). `io::Error` is neither `Clone` nor `PartialEq`, so the kind
    /// and message are captured as text.
    Io {
        /// File the operation targeted.
        file: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// The file does not start with the expected magic number — it is not a
    /// SAG WAL/snapshot, or its header was overwritten.
    BadMagic {
        /// The offending file.
        file: String,
        /// The magic actually found.
        found: u32,
    },
    /// A record *before* the final one fails its CRC: the log is corrupt in
    /// a place a torn write cannot explain, so replay refuses to guess.
    CorruptChecksum {
        /// The offending file.
        file: String,
        /// Byte offset of the corrupt frame.
        offset: u64,
    },
    /// A snapshot ended mid-structure. Snapshots are written atomically
    /// (temp file + rename), so unlike a WAL tail this is never expected.
    Truncated {
        /// The offending file.
        file: String,
    },
    /// The file was written by a different format version of this crate.
    VersionMismatch {
        /// The offending file.
        file: String,
        /// Version found in the header.
        found: u16,
        /// Version this build writes.
        expected: u16,
    },
    /// Durable state exists on disk for a tenant the recovering service
    /// does not register — recovery refuses to silently drop a log.
    UnknownTenant {
        /// The tenant the orphaned state belongs to.
        tenant: String,
    },
    /// The tenant name recorded inside the file is not the tenant the file
    /// name maps to (a copied or renamed log).
    TenantMismatch {
        /// The offending file.
        file: String,
        /// Tenant the service expected.
        expected: String,
        /// Tenant recorded in the header.
        found: String,
    },
    /// A frame's payload passed its CRC but does not decode as a known
    /// record (unknown kind, short body, malformed embedded day log).
    InvalidRecord {
        /// The offending file.
        file: String,
        /// Byte offset of the frame.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// A freshly built durable service found prior state on disk. Building
    /// would append over history it never replayed; use
    /// `ServiceBuilder::recover_from` instead.
    ExistingState {
        /// The file holding the prior state.
        file: String,
    },
}

impl WalError {
    /// Build an [`WalError::Io`] from an `std::io::Error`.
    #[must_use]
    pub fn io(file: impl Into<String>, error: &std::io::Error) -> Self {
        WalError::Io {
            file: file.into(),
            message: error.to_string(),
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { file, message } => write!(f, "wal io error on {file}: {message}"),
            WalError::BadMagic { file, found } => {
                write!(f, "bad magic number {found:#010x} in {file}")
            }
            WalError::CorruptChecksum { file, offset } => {
                write!(f, "corrupt checksum in {file} at byte {offset}")
            }
            WalError::Truncated { file } => write!(f, "{file} is truncated mid-structure"),
            WalError::VersionMismatch {
                file,
                found,
                expected,
            } => write!(
                f,
                "{file} is format version {found}, this build expects {expected}"
            ),
            WalError::UnknownTenant { tenant } => {
                write!(f, "durable state for unknown tenant {tenant}")
            }
            WalError::TenantMismatch {
                file,
                expected,
                found,
            } => write!(
                f,
                "{file} records tenant {found:?} but belongs to tenant {expected:?}"
            ),
            WalError::InvalidRecord {
                file,
                offset,
                reason,
            } => write!(f, "invalid record in {file} at byte {offset}: {reason}"),
            WalError::ExistingState { file } => write!(
                f,
                "{file} already holds durable state; recover_from it instead of building fresh"
            ),
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let cases: Vec<(WalError, &str)> = vec![
            (
                WalError::io("t.wal", &std::io::Error::other("boom")),
                "boom",
            ),
            (
                WalError::BadMagic {
                    file: "t.wal".into(),
                    found: 0xDEAD,
                },
                "magic",
            ),
            (
                WalError::CorruptChecksum {
                    file: "t.wal".into(),
                    offset: 42,
                },
                "42",
            ),
            (
                WalError::Truncated {
                    file: "t.snap".into(),
                },
                "truncated",
            ),
            (
                WalError::VersionMismatch {
                    file: "t.wal".into(),
                    found: 9,
                    expected: 1,
                },
                "version 9",
            ),
            (
                WalError::UnknownTenant {
                    tenant: "ghost".into(),
                },
                "ghost",
            ),
            (
                WalError::TenantMismatch {
                    file: "a.wal".into(),
                    expected: "a".into(),
                    found: "b".into(),
                },
                "belongs to",
            ),
            (
                WalError::InvalidRecord {
                    file: "t.wal".into(),
                    offset: 7,
                    reason: "unknown kind 9".into(),
                },
                "unknown kind",
            ),
            (
                WalError::ExistingState {
                    file: "t.wal".into(),
                },
                "recover_from",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
