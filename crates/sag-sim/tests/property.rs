//! Property-based tests for the simulation substrate: stream calibration,
//! log invariants, binary codec round-trips and the rule engine's symmetry.

use proptest::prelude::*;
use sag_sim::binary::{decode_day, decode_log, encode_day, encode_log};
use sag_sim::stream::count_by_type;
use sag_sim::{
    Alert, AlertCatalog, AlertLog, AlertTypeId, DayLog, DiurnalProfile, StreamConfig,
    StreamGenerator, TimeOfDay,
};

fn arbitrary_alert() -> impl Strategy<Value = Alert> {
    (0u32..60, 0u32..86_400, 0u16..7, any::<bool>()).prop_map(|(day, secs, ty, attack)| Alert {
        day,
        time: TimeOfDay::from_seconds(secs),
        type_id: AlertTypeId(ty),
        employee: None,
        patient: None,
        is_attack: attack,
    })
}

fn arbitrary_day() -> impl Strategy<Value = DayLog> {
    (
        0u32..60,
        proptest::collection::vec(arbitrary_alert(), 0..200),
    )
        .prop_map(|(day, mut alerts)| {
            for a in &mut alerts {
                a.day = day;
            }
            DayLog::new(day, alerts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Day logs are always sorted and counting by type partitions the alerts.
    #[test]
    fn day_logs_are_sorted_and_counts_partition(day in arbitrary_day()) {
        for pair in day.alerts().windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
        let counts = count_by_type(day.alerts(), 7);
        prop_assert_eq!(counts.iter().sum::<usize>(), day.len());
        for t in 0..7u16 {
            prop_assert_eq!(counts[t as usize], day.count_of_type(AlertTypeId(t)));
        }
    }

    /// The binary codec round-trips arbitrary day logs exactly (modulo the
    /// person references it intentionally drops).
    #[test]
    fn binary_codec_round_trips(day in arbitrary_day()) {
        let decoded = decode_day(&mut encode_day(&day)).unwrap();
        prop_assert_eq!(decoded.day(), day.day());
        prop_assert_eq!(decoded.len(), day.len());
        for (a, b) in day.alerts().iter().zip(decoded.alerts()) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.type_id, b.type_id);
            prop_assert_eq!(a.is_attack, b.is_attack);
        }
    }

    /// Multi-day logs round-trip through the codec and preserve totals.
    #[test]
    fn multi_day_codec_round_trips(days in proptest::collection::vec(arbitrary_day(), 0..8)) {
        let log = AlertLog::new(days);
        let decoded = decode_log(encode_log(&log)).unwrap();
        prop_assert_eq!(decoded.num_days(), log.num_days());
        prop_assert_eq!(decoded.total_alerts(), log.total_alerts());
    }

    /// Calibrated streams always produce sorted, in-catalogue, benign alerts,
    /// regardless of seed.
    #[test]
    fn calibrated_streams_are_well_formed(seed in any::<u64>()) {
        let mut generator = StreamGenerator::new(StreamConfig::paper_multi_type(seed));
        let day = generator.generate_day(3);
        let catalog = AlertCatalog::paper_table1();
        for pair in day.alerts().windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
        for alert in day.alerts() {
            prop_assert!(alert.type_id.index() < catalog.len());
            prop_assert!(!alert.is_attack);
            prop_assert_eq!(alert.day, 3);
        }
        // Total volume is within a loose global bound (sum of means ± 6 sigma).
        let mean: f64 = catalog.daily_means().iter().sum();
        let sigma: f64 = catalog.daily_stds().iter().sum();
        let n = day.len() as f64;
        prop_assert!(n > mean - 6.0 * sigma && n < mean + 6.0 * sigma,
            "daily volume {n} far from calibration mean {mean}");
    }

    /// Rolling groups always produce history windows of exactly the requested
    /// length, and test days directly follow their window.
    #[test]
    fn rolling_groups_are_contiguous(total in 2u32..30, history_len in 1usize..20) {
        let days: Vec<DayLog> = (0..total).map(|d| DayLog::new(d, vec![])).collect();
        let log = AlertLog::new(days);
        let groups = log.rolling_groups(history_len);
        let expected = (total as usize).saturating_sub(history_len);
        prop_assert_eq!(groups.len(), expected);
        for (history, test) in groups {
            prop_assert_eq!(history.len(), history_len);
            prop_assert_eq!(history.last().unwrap().day() + 1, test.day());
        }
    }

    /// The diurnal profile's tail function is a proper survival function.
    #[test]
    fn diurnal_fraction_after_is_a_survival_function(hour in 0u32..24, minute in 0u32..60) {
        let profile = DiurnalProfile::standard_hco();
        let t = TimeOfDay::from_hms(hour, minute, 0);
        let f = profile.fraction_after(t);
        prop_assert!((0.0..=1.0).contains(&f));
        // Later times can only have smaller tails.
        let later = TimeOfDay::from_hms(23, 59, 59);
        prop_assert!(profile.fraction_after(later) <= f + 1e-12);
    }
}
