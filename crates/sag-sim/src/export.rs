//! Export of alert and access logs to CSV and JSON-lines.
//!
//! These formats make it easy to inspect the synthetic data with external
//! tooling and to hand the reproduced experiment series to plotting scripts.

use crate::access::AccessEvent;
use crate::alert::Alert;
use crate::log::DayLog;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Write alerts as CSV with a header: `day,time,seconds,type,is_attack`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_alerts_csv<W: Write>(mut out: W, alerts: &[Alert]) -> io::Result<()> {
    writeln!(out, "day,time,seconds,type,is_attack")?;
    for a in alerts {
        writeln!(
            out,
            "{},{},{},{},{}",
            a.day,
            a.time,
            a.time.seconds(),
            a.type_id.index() + 1,
            a.is_attack
        )?;
    }
    Ok(())
}

/// Write a multi-day collection of [`DayLog`]s as CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_days_csv<W: Write>(mut out: W, days: &[DayLog]) -> io::Result<()> {
    writeln!(out, "day,time,seconds,type,is_attack")?;
    for day in days {
        for a in day.alerts() {
            writeln!(
                out,
                "{},{},{},{},{}",
                a.day,
                a.time,
                a.time.seconds(),
                a.type_id.index() + 1,
                a.is_attack
            )?;
        }
    }
    Ok(())
}

/// Write alerts as JSON-lines (one JSON object per alert).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_alerts_jsonl<W: Write>(mut out: W, alerts: &[Alert]) -> io::Result<()> {
    for a in alerts {
        writeln!(out, "{}", alert_to_json(a))?;
    }
    Ok(())
}

/// Render one alert as a flat JSON object. All fields are numeric or boolean,
/// so no string escaping is required.
#[must_use]
pub fn alert_to_json(a: &Alert) -> String {
    let mut line = format!(
        "{{\"day\":{},\"seconds\":{},\"type\":{},\"is_attack\":{}",
        a.day,
        a.time.seconds(),
        a.type_id.0,
        a.is_attack
    );
    if let Some(e) = a.employee {
        let _ = write!(line, ",\"employee\":{}", e.0);
    }
    if let Some(p) = a.patient {
        let _ = write!(line, ",\"patient\":{}", p.0);
    }
    line.push('}');
    line
}

/// Parse one alert from the JSON-lines form produced by [`alert_to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn alert_from_json(line: &str) -> Result<Alert, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line}"))?;
    let mut alert = Alert {
        day: 0,
        time: crate::time::TimeOfDay::from_seconds(0),
        type_id: crate::alert::AlertTypeId(0),
        employee: None,
        patient: None,
        is_attack: false,
    };
    for field in body.split(',').filter(|f| !f.trim().is_empty()) {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("malformed field `{field}`"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        let parse_u32 = |v: &str| {
            v.parse::<u32>()
                .map_err(|e| format!("bad value for `{key}`: {e}"))
        };
        match key {
            "day" => alert.day = parse_u32(value)?,
            "seconds" => alert.time = crate::time::TimeOfDay::from_seconds(parse_u32(value)?),
            "type" => {
                alert.type_id = crate::alert::AlertTypeId(
                    value
                        .parse::<u16>()
                        .map_err(|e| format!("bad value for `type`: {e}"))?,
                );
            }
            "is_attack" => {
                alert.is_attack = value
                    .parse::<bool>()
                    .map_err(|e| format!("bad value for `is_attack`: {e}"))?;
            }
            "employee" => alert.employee = Some(crate::person::PersonId(parse_u32(value)?)),
            "patient" => alert.patient = Some(crate::person::PersonId(parse_u32(value)?)),
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    Ok(alert)
}

/// Write access events as CSV with a header: `day,time,employee,patient`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_accesses_csv<W: Write>(mut out: W, events: &[AccessEvent]) -> io::Result<()> {
    writeln!(out, "day,time,employee,patient")?;
    for e in events {
        writeln!(out, "{},{},{},{}", e.day, e.time, e.employee.0, e.patient.0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertTypeId;
    use crate::person::PersonId;
    use crate::time::TimeOfDay;

    fn sample_alerts() -> Vec<Alert> {
        vec![
            Alert::benign(0, TimeOfDay::from_hms(9, 30, 0), AlertTypeId(0)),
            Alert::attack(0, TimeOfDay::from_hms(14, 0, 0), AlertTypeId(3)),
        ]
    }

    #[test]
    fn csv_has_header_and_one_line_per_alert() {
        let mut buf = Vec::new();
        write_alerts_csv(&mut buf, &sample_alerts()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "day,time,seconds,type,is_attack");
        assert!(lines[1].starts_with("0,09:30:00,34200,1,false"));
        assert!(lines[2].contains(",4,true"));
    }

    #[test]
    fn days_csv_concatenates_days() {
        let days = vec![
            DayLog::new(0, sample_alerts()),
            DayLog::new(
                1,
                vec![Alert::benign(
                    1,
                    TimeOfDay::from_hms(8, 0, 0),
                    AlertTypeId(1),
                )],
            ),
        ];
        let mut buf = Vec::new();
        write_days_csv(&mut buf, &days).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + 3);
    }

    #[test]
    fn jsonl_round_trips() {
        let alerts = sample_alerts();
        let mut buf = Vec::new();
        write_alerts_jsonl(&mut buf, &alerts).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: Vec<Alert> = text.lines().map(|l| alert_from_json(l).unwrap()).collect();
        assert_eq!(parsed, alerts);
    }

    #[test]
    fn json_includes_person_ids_when_present() {
        let mut alert = Alert::benign(3, TimeOfDay::from_hms(1, 2, 3), AlertTypeId(2));
        alert.employee = Some(PersonId(11));
        alert.patient = Some(PersonId(22));
        let line = alert_to_json(&alert);
        assert!(line.contains("\"employee\":11"));
        assert!(line.contains("\"patient\":22"));
        assert_eq!(alert_from_json(&line).unwrap(), alert);
    }

    #[test]
    fn malformed_json_lines_are_rejected() {
        assert!(alert_from_json("not json").is_err());
        assert!(alert_from_json("{\"day\":-1}").is_err());
        assert!(alert_from_json("{\"mystery\":1}").is_err());
    }

    #[test]
    fn access_csv_contains_person_ids() {
        let events = vec![AccessEvent {
            day: 2,
            time: TimeOfDay::from_hms(10, 0, 0),
            employee: PersonId(5),
            patient: PersonId(77),
        }];
        let mut buf = Vec::new();
        write_accesses_csv(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2,10:00:00,5,77"));
    }
}
