//! Compact binary encoding of alert logs.
//!
//! Real deployments retain months of alert history; the JSON/CSV exports in
//! [`crate::export`] are convenient but verbose (≈ 60–100 bytes per alert).
//! This module provides a fixed-width binary codec (9 bytes per alert plus a
//! small header per day) built on [`bytes`], used for archiving synthetic
//! datasets and for fast reload in long experiment sweeps.
//!
//! ## Format
//!
//! ```text
//! DayLog   := magic:u32 ("SAG1") day:u32 count:u32 Alert{count}
//! Alert    := seconds:u32 type:u16 flags:u8 (bit 0 = is_attack) reserved:u16
//! AlertLog := num_days:u32 DayLog{num_days}
//! ```
//!
//! All integers are little-endian. Person references are intentionally not
//! serialised: the audit game only consumes `(time, type, is_attack)`.

use crate::alert::{Alert, AlertTypeId};
use crate::log::{AlertLog, DayLog};
use crate::time::TimeOfDay;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic number identifying a serialized day log.
const MAGIC: u32 = 0x5341_4731; // "SAG1"

/// Errors produced while decoding a binary alert log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The day-log header does not start with the expected magic number.
    BadMagic(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "binary alert log is truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad magic number {m:#x} in alert log"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode one day of alerts.
#[must_use]
pub fn encode_day(day: &DayLog) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + day.len() * 9);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(day.day());
    buf.put_u32_le(day.len() as u32);
    for alert in day.alerts() {
        buf.put_u32_le(alert.time.seconds());
        buf.put_u16_le(alert.type_id.0);
        buf.put_u8(u8::from(alert.is_attack));
        buf.put_u16_le(0); // reserved
    }
    buf.freeze()
}

/// Decode one day of alerts from the front of `buf`, advancing it.
///
/// # Errors
///
/// Returns [`DecodeError`] when the buffer is malformed.
pub fn decode_day(buf: &mut impl Buf) -> Result<DayLog, DecodeError> {
    if buf.remaining() < 12 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let day = buf.get_u32_le();
    let count = buf.get_u32_le() as usize;
    if buf.remaining() < count * 9 {
        return Err(DecodeError::Truncated);
    }
    let mut alerts = Vec::with_capacity(count);
    for _ in 0..count {
        let seconds = buf.get_u32_le();
        let type_id = buf.get_u16_le();
        let flags = buf.get_u8();
        let _reserved = buf.get_u16_le();
        alerts.push(Alert {
            day,
            time: TimeOfDay::from_seconds(seconds),
            type_id: AlertTypeId(type_id),
            employee: None,
            patient: None,
            is_attack: flags & 1 != 0,
        });
    }
    Ok(DayLog::new(day, alerts))
}

/// Encode a multi-day log.
#[must_use]
pub fn encode_log(log: &AlertLog) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + log.total_alerts() * 9 + log.num_days() * 12);
    buf.put_u32_le(log.num_days() as u32);
    for day in log.days() {
        buf.extend_from_slice(&encode_day(day));
    }
    buf.freeze()
}

/// Decode a multi-day log.
///
/// # Errors
///
/// Returns [`DecodeError`] when the buffer is malformed.
pub fn decode_log(mut buf: impl Buf) -> Result<AlertLog, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let num_days = buf.get_u32_le() as usize;
    let mut days = Vec::with_capacity(num_days);
    for _ in 0..num_days {
        days.push(decode_day(&mut buf)?);
    }
    Ok(AlertLog::new(days))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamConfig, StreamGenerator};

    fn sample_day() -> DayLog {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(3));
        gen.generate_day(5)
    }

    #[test]
    fn day_round_trips() {
        let day = sample_day();
        let encoded = encode_day(&day);
        let decoded = decode_day(&mut encoded.clone()).unwrap();
        assert_eq!(decoded.day(), day.day());
        assert_eq!(decoded.len(), day.len());
        for (a, b) in day.alerts().iter().zip(decoded.alerts()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.type_id, b.type_id);
            assert_eq!(a.is_attack, b.is_attack);
        }
    }

    #[test]
    fn log_round_trips_and_is_compact() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(9));
        let log = AlertLog::new(gen.generate_days(5));
        let encoded = encode_log(&log);
        // 9 bytes per alert plus headers: far below the ~80 bytes/alert of
        // JSON-lines.
        assert!(encoded.len() <= 4 + log.num_days() * 12 + log.total_alerts() * 9);
        let decoded = decode_log(encoded).unwrap();
        assert_eq!(decoded.num_days(), log.num_days());
        assert_eq!(decoded.total_alerts(), log.total_alerts());
    }

    #[test]
    fn attack_flag_survives_round_trip() {
        let mut day = sample_day();
        day.insert(Alert::attack(
            5,
            TimeOfDay::from_hms(23, 0, 0),
            AlertTypeId(6),
        ));
        let decoded = decode_day(&mut encode_day(&day)).unwrap();
        assert_eq!(decoded.alerts().iter().filter(|a| a.is_attack).count(), 1);
        let attack = decoded.alerts().iter().find(|a| a.is_attack).unwrap();
        assert_eq!(attack.type_id, AlertTypeId(6));
        assert_eq!(attack.time, TimeOfDay::from_hms(23, 0, 0));
    }

    #[test]
    fn truncated_and_corrupt_buffers_are_rejected() {
        let day = sample_day();
        let encoded = encode_day(&day);
        // Truncate mid-alert.
        let truncated = encoded.slice(0..encoded.len() - 3);
        assert_eq!(
            decode_day(&mut truncated.clone()),
            Err(DecodeError::Truncated)
        );
        // Corrupt the magic.
        let mut corrupt = BytesMut::from(&encoded[..]);
        corrupt[0] = 0xFF;
        assert!(matches!(
            decode_day(&mut corrupt.freeze()),
            Err(DecodeError::BadMagic(_))
        ));
        // Empty buffer.
        assert_eq!(decode_log(Bytes::new()), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_error_messages_are_informative() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadMagic(0xdead).to_string().contains("magic"));
    }
}
