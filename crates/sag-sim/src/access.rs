//! EMR access events and their diurnal generation.
//!
//! An access event is the triple `⟨employee, patient, time⟩` within a day —
//! the unit the paper's breach-detection tooling inspects. Accesses are
//! generated with a non-homogeneous Poisson process whose intensity follows a
//! workday profile: near-silent overnight, ramping up from 06:00, peaking
//! between 08:00 and 17:00 (shift changes), and tapering off in the evening —
//! matching the paper's observation that "the majority of alerts were
//! triggered between 8:00 AM and 5:00 PM".

use crate::person::PersonId;
use crate::population::Population;
use crate::rng::poisson;
use crate::stream::DiurnalProfile;
use crate::time::TimeOfDay;
use rand::Rng;

/// A single EMR access event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessEvent {
    /// Day index within the dataset.
    pub day: u32,
    /// Time of the access.
    pub time: TimeOfDay,
    /// Accessing employee.
    pub employee: PersonId,
    /// Accessed patient.
    pub patient: PersonId,
}

/// Configuration of the access generator.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessConfig {
    /// Expected number of accesses per day (the paper's log averages
    /// ≈ 192 000 unique accesses/day; scale down for fast experiments).
    pub daily_accesses: f64,
    /// Diurnal intensity profile.
    pub diurnal: DiurnalProfile,
}

impl Default for AccessConfig {
    fn default() -> Self {
        AccessConfig {
            daily_accesses: 20_000.0,
            diurnal: DiurnalProfile::standard_hco(),
        }
    }
}

impl AccessConfig {
    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        AccessConfig {
            daily_accesses: 500.0,
            diurnal: DiurnalProfile::standard_hco(),
        }
    }
}

/// Generates daily access logs over a population.
#[derive(Debug, Clone)]
pub struct AccessGenerator {
    config: AccessConfig,
}

impl AccessGenerator {
    /// Create a generator.
    #[must_use]
    pub fn new(config: AccessConfig) -> Self {
        AccessGenerator { config }
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> &AccessConfig {
        &self.config
    }

    /// Generate one day of access events, sorted by time.
    pub fn generate_day<R: Rng + ?Sized>(
        &self,
        population: &Population,
        day: u32,
        rng: &mut R,
    ) -> Vec<AccessEvent> {
        let count = poisson(rng, self.config.daily_accesses) as usize;
        let mut events: Vec<AccessEvent> = (0..count)
            .map(|_| AccessEvent {
                day,
                time: self.config.diurnal.sample_time(rng),
                employee: population.sample_employee(rng),
                patient: population.sample_patient(rng),
            })
            .collect();
        events.sort_by_key(|e| e.time);
        events
    }

    /// Generate several consecutive days.
    pub fn generate_days<R: Rng + ?Sized>(
        &self,
        population: &Population,
        num_days: u32,
        rng: &mut R,
    ) -> Vec<Vec<AccessEvent>> {
        (0..num_days)
            .map(|d| self.generate_day(population, d, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Population, AccessGenerator, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        let pop = Population::generate(&PopulationConfig::tiny(), &mut rng);
        (pop, AccessGenerator::new(AccessConfig::tiny()), rng)
    }

    #[test]
    fn day_volume_tracks_configuration() {
        let (pop, gen, mut rng) = setup();
        let events = gen.generate_day(&pop, 0, &mut rng);
        let expected = gen.config().daily_accesses;
        assert!(
            (events.len() as f64) > expected * 0.7 && (events.len() as f64) < expected * 1.3,
            "expected ~{expected} events, got {}",
            events.len()
        );
    }

    #[test]
    fn events_are_sorted_and_reference_valid_people() {
        let (pop, gen, mut rng) = setup();
        let events = gen.generate_day(&pop, 2, &mut rng);
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for e in &events {
            assert_eq!(e.day, 2);
            assert!(pop.person(e.employee).role.is_employee());
            assert!(pop.person(e.patient).role.is_patient());
        }
    }

    #[test]
    fn diurnal_shape_concentrates_in_working_hours() {
        let (pop, gen, mut rng) = setup();
        let mut working = 0usize;
        let mut total = 0usize;
        for day in 0..20 {
            for e in gen.generate_day(&pop, day, &mut rng) {
                total += 1;
                if (8..17).contains(&e.time.hour()) {
                    working += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = working as f64 / total as f64;
        assert!(frac > 0.55, "only {frac:.2} of accesses in working hours");
    }

    #[test]
    fn multi_day_generation_produces_requested_days() {
        let (pop, gen, mut rng) = setup();
        let days = gen.generate_days(&pop, 5, &mut rng);
        assert_eq!(days.len(), 5);
        for (i, day) in days.iter().enumerate() {
            assert!(day.iter().all(|e| e.day == i as u32));
        }
    }
}
