//! Last-name model for the synthetic population.
//!
//! The *Same Last Name* rule is by far the most frequent alert type in the
//! paper (≈ 197 alerts/day), which reflects the heavy-tailed distribution of
//! surnames in a real patient population: a handful of very common names
//! account for many accidental employee/patient matches. The simulator uses a
//! fixed list of common US surnames with Zipf-like weights; the exact list is
//! irrelevant to the audit game — only the collision probability matters.

use crate::rng::weighted_index;
use rand::Rng;

/// Identifier of a last name within a [`NamePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// A weighted pool of last names.
#[derive(Debug, Clone)]
pub struct NamePool {
    names: Vec<String>,
    weights: Vec<f64>,
}

/// Common US surnames used as the default pool.
const COMMON_SURNAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
];

impl NamePool {
    /// Build a pool with explicit names and weights.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or the pool is empty.
    #[must_use]
    pub fn new(names: Vec<String>, weights: Vec<f64>) -> Self {
        assert_eq!(names.len(), weights.len(), "names and weights must align");
        assert!(!names.is_empty(), "name pool must not be empty");
        NamePool { names, weights }
    }

    /// Default pool: common US surnames with Zipf(1.0) weights, padded with
    /// `extra_rare` synthetic rare names of uniform small weight so that the
    /// collision rate can be tuned down for large populations.
    #[must_use]
    pub fn default_pool(extra_rare: usize) -> Self {
        let mut names: Vec<String> = COMMON_SURNAMES.iter().map(|s| (*s).to_string()).collect();
        let mut weights: Vec<f64> = (1..=names.len()).map(|rank| 1.0 / rank as f64).collect();
        let rare_weight = weights.last().copied().unwrap_or(1.0) / 4.0;
        for i in 0..extra_rare {
            names.push(format!("Rare{i:05}"));
            weights.push(rare_weight);
        }
        NamePool { names, weights }
    }

    /// Number of distinct names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the pool is empty (never true for constructed pools).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The textual name for an id.
    #[must_use]
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Sample a name id according to the pool weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NameId {
        let idx = weighted_index(rng, &self.weights).expect("non-empty pool has positive weight");
        NameId(idx as u32)
    }

    /// Probability that two independent draws collide (same name) — a useful
    /// calibration diagnostic for the *Same Last Name* alert volume.
    #[must_use]
    pub fn collision_probability(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights.iter().map(|w| (w / total).powi(2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_pool_has_common_names_and_padding() {
        let pool = NamePool::default_pool(100);
        assert_eq!(pool.len(), COMMON_SURNAMES.len() + 100);
        assert_eq!(pool.name(NameId(0)), "Smith");
        assert!(!pool.is_empty());
    }

    #[test]
    fn sampling_respects_zipf_ordering() {
        let pool = NamePool::default_pool(0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; pool.len()];
        for _ in 0..20_000 {
            counts[pool.sample(&mut rng).0 as usize] += 1;
        }
        // The most common name must be sampled clearly more often than the
        // tenth most common one.
        assert!(
            counts[0] > counts[9] * 2,
            "counts[0]={} counts[9]={}",
            counts[0],
            counts[9]
        );
    }

    #[test]
    fn collision_probability_decreases_with_more_rare_names() {
        let small = NamePool::default_pool(0).collision_probability();
        let large = NamePool::default_pool(5_000).collision_probability();
        assert!(large < small);
        assert!(small > 0.0 && small < 1.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = NamePool::new(vec!["A".into()], vec![1.0, 2.0]);
    }
}
