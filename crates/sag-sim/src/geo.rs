//! Planar geography for residential addresses.
//!
//! The paper's *Neighbor* rule fires when an employee and a patient live
//! within 0.5 miles of each other. The simulator models the metropolitan area
//! around the medical center as a flat plane measured in miles, which is
//! accurate to well under a percent at city scale and keeps the distance
//! computation trivial.

/// Distance threshold (miles) for the *Neighbor* rule, per the paper.
pub const NEIGHBOR_RADIUS_MILES: f64 = 0.5;

/// A planar location in miles relative to an arbitrary city origin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Location {
    /// East–west offset in miles.
    pub x: f64,
    /// North–south offset in miles.
    pub y: f64,
}

impl Location {
    /// Construct a location from mile offsets.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Location { x, y }
    }

    /// Euclidean distance to another location, in miles.
    #[must_use]
    pub fn distance_miles(self, other: Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Whether another location is within the *Neighbor* radius but not
    /// exactly co-located (co-location is the *Same Address* rule's job).
    #[must_use]
    pub fn is_neighbor_of(self, other: Location) -> bool {
        let d = self.distance_miles(other);
        d > 0.0 && d <= NEIGHBOR_RADIUS_MILES
    }
}

/// A residential address: a block identifier plus a geographic location.
///
/// Two people share an address iff their `block_id`s are equal; the location
/// is used for the neighbor-distance rule. Keeping the two notions separate
/// mirrors real EMR demographics, where textual address match and geocoded
/// proximity are different signals (and lets combinations such as Table 1's
/// type 7, *Last Name + Same Address + Neighbor*, arise from households with
/// several registered addresses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Address {
    /// Identifier of the address record (street + number), equality of which
    /// constitutes the *Same Address* rule.
    pub block_id: u32,
    /// Geocoded location of the address.
    pub location: Location,
}

impl Address {
    /// Construct an address.
    #[must_use]
    pub fn new(block_id: u32, location: Location) -> Self {
        Address { block_id, location }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert!((a.distance_miles(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_miles(a), 0.0);
    }

    #[test]
    fn neighbor_requires_nonzero_distance_within_radius() {
        let a = Location::new(0.0, 0.0);
        let near = Location::new(0.3, 0.0);
        let far = Location::new(0.6, 0.0);
        assert!(a.is_neighbor_of(near));
        assert!(!a.is_neighbor_of(far));
        assert!(
            !a.is_neighbor_of(a),
            "identical location is 'same address', not 'neighbor'"
        );
    }

    #[test]
    fn neighbor_boundary_is_inclusive() {
        let a = Location::new(0.0, 0.0);
        let edge = Location::new(NEIGHBOR_RADIUS_MILES, 0.0);
        assert!(a.is_neighbor_of(edge));
    }

    #[test]
    fn address_equality_is_by_block() {
        let a = Address::new(10, Location::new(1.0, 1.0));
        let b = Address::new(10, Location::new(1.0, 1.0));
        assert_eq!(a, b);
        assert_eq!(a.block_id, b.block_id);
    }
}
