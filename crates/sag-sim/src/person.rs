//! People in the synthetic world: employees and patients.

use crate::geo::Address;
use crate::names::NameId;

/// Identifier of a person (employee or patient) within a
/// [`Population`](crate::population::Population).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PersonId(pub u32);

/// Identifier of a hospital department.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepartmentId(pub u16);

/// Role of a person in the world model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Hospital employee with EMR access.
    Employee {
        /// Department the employee works in.
        department: DepartmentId,
    },
    /// Patient with a record in the EMR.
    Patient,
    /// A hospital employee who is *also* a patient of the hospital — the
    /// population segment that makes the *Department Co-worker* rule fire.
    EmployeePatient {
        /// Department the employee works in.
        department: DepartmentId,
    },
}

impl Role {
    /// Department of the person, if they are (also) an employee.
    #[must_use]
    pub fn department(&self) -> Option<DepartmentId> {
        match self {
            Role::Employee { department } | Role::EmployeePatient { department } => {
                Some(*department)
            }
            Role::Patient => None,
        }
    }

    /// Whether the person can appear as the accessing employee of an event.
    #[must_use]
    pub fn is_employee(&self) -> bool {
        matches!(self, Role::Employee { .. } | Role::EmployeePatient { .. })
    }

    /// Whether the person can appear as the accessed patient of an event.
    #[must_use]
    pub fn is_patient(&self) -> bool {
        matches!(self, Role::Patient | Role::EmployeePatient { .. })
    }
}

/// A person in the synthetic world.
#[derive(Debug, Clone, PartialEq)]
pub struct Person {
    /// Stable identifier.
    pub id: PersonId,
    /// Last name (index into the population's name pool).
    pub last_name: NameId,
    /// Registered residential addresses (1 or 2 entries; households sometimes
    /// register both a home and a secondary address, which is what produces
    /// the *Same Address + Neighbor* combinations of Table 1).
    pub addresses: Vec<Address>,
    /// Role in the world model.
    pub role: Role,
}

impl Person {
    /// Whether this person shares a registered address with another person.
    #[must_use]
    pub fn shares_address_with(&self, other: &Person) -> bool {
        self.addresses
            .iter()
            .any(|a| other.addresses.iter().any(|b| a.block_id == b.block_id))
    }

    /// Whether any pair of registered addresses of the two people are
    /// neighbors (strictly positive distance within the neighbor radius).
    #[must_use]
    pub fn is_neighbor_of(&self, other: &Person) -> bool {
        self.addresses.iter().any(|a| {
            other
                .addresses
                .iter()
                .any(|b| a.location.is_neighbor_of(b.location))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{Address, Location};

    fn person(id: u32, name: u32, addrs: Vec<Address>, role: Role) -> Person {
        Person {
            id: PersonId(id),
            last_name: NameId(name),
            addresses: addrs,
            role,
        }
    }

    #[test]
    fn role_accessors() {
        let emp = Role::Employee {
            department: DepartmentId(3),
        };
        let pat = Role::Patient;
        let both = Role::EmployeePatient {
            department: DepartmentId(5),
        };
        assert!(emp.is_employee() && !emp.is_patient());
        assert!(!pat.is_employee() && pat.is_patient());
        assert!(both.is_employee() && both.is_patient());
        assert_eq!(emp.department(), Some(DepartmentId(3)));
        assert_eq!(pat.department(), None);
        assert_eq!(both.department(), Some(DepartmentId(5)));
    }

    #[test]
    fn shared_address_detection() {
        let a1 = Address::new(1, Location::new(0.0, 0.0));
        let a2 = Address::new(2, Location::new(5.0, 5.0));
        let a3 = Address::new(1, Location::new(0.0, 0.0));
        let p = person(0, 0, vec![a1, a2], Role::Patient);
        let q = person(
            1,
            1,
            vec![a3],
            Role::Employee {
                department: DepartmentId(0),
            },
        );
        let r = person(2, 2, vec![a2], Role::Patient);
        assert!(p.shares_address_with(&q));
        assert!(q.shares_address_with(&p));
        assert!(!q.shares_address_with(&r));
    }

    #[test]
    fn neighbor_detection_uses_any_address_pair() {
        let home_p = Address::new(1, Location::new(0.0, 0.0));
        let home_q = Address::new(2, Location::new(0.3, 0.0));
        let far = Address::new(3, Location::new(10.0, 10.0));
        let p = person(0, 0, vec![home_p], Role::Patient);
        let q = person(
            1,
            1,
            vec![far, home_q],
            Role::Employee {
                department: DepartmentId(0),
            },
        );
        assert!(p.is_neighbor_of(&q));
        assert!(q.is_neighbor_of(&p));
        let r = person(2, 2, vec![far], Role::Patient);
        assert!(!p.is_neighbor_of(&r));
    }

    #[test]
    fn same_location_is_not_neighbor() {
        let a = Address::new(1, Location::new(0.0, 0.0));
        let b = Address::new(2, Location::new(0.0, 0.0));
        let p = person(0, 0, vec![a], Role::Patient);
        let q = person(
            1,
            1,
            vec![b],
            Role::Employee {
                department: DepartmentId(0),
            },
        );
        assert!(!p.is_neighbor_of(&q));
        assert!(
            !p.shares_address_with(&q),
            "different block ids are not the same address"
        );
    }
}
