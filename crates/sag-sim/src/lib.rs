//! # sag-sim — synthetic EMR world model and alert streams
//!
//! The SAG paper evaluates on a proprietary access log of a large academic
//! medical center: 10.75 million `⟨date, employee, patient⟩` accesses over 56
//! working days, run through a rule engine that flags suspicious accesses and
//! assigns each alert one of seven predefined types (Table 1 of the paper).
//! That log cannot be redistributed, so this crate provides the closest
//! synthetic equivalent:
//!
//! * a **world model** ([`population`], [`person`], [`names`], [`geo`]) of
//!   employees and patients with last names, departments and residential
//!   addresses;
//! * an **access generator** ([`access`]) producing `⟨employee, patient,
//!   time⟩` events with the diurnal intensity profile described in the paper
//!   (the bulk of activity between 08:00 and 17:00);
//! * the **alert rule engine** ([`rules`]) implementing the four base
//!   predicates (same last name, department co-worker, neighbor within half a
//!   mile, same residential address) and the combination typing that yields
//!   the seven alert types of Table 1;
//! * a **calibrated alert-stream generator** ([`stream`]) that reproduces the
//!   per-type daily mean/standard deviation of Table 1 directly, which is what
//!   the audit-game experiments consume;
//! * an in-memory **alert log store** ([`log`]) with CSV/JSON-lines export
//!   ([`export`]).
//!
//! The audit-game algorithms in `sag-core` only ever observe the typed alert
//! stream and historical per-type arrival statistics, so matching the arrival
//! process is sufficient to exercise every code path that the real log would.

#![forbid(unsafe_code)]

pub mod access;
pub mod alert;
pub mod binary;
pub mod export;
pub mod geo;
pub mod log;
pub mod names;
pub mod person;
pub mod population;
pub mod rng;
pub mod rules;
pub mod stream;
pub mod time;

pub use alert::{Alert, AlertCatalog, AlertTypeId, AlertTypeInfo, BaseRule, RuleSet};
pub use log::{AlertLog, DayLog};
pub use stream::{ArrivalProcess, DiurnalProfile, StreamConfig, StreamGenerator, VolumeTrend};
pub use time::{TimeOfDay, SECONDS_PER_DAY};
