//! Alert types, the alert catalogue of Table 1 and individual alert events.

use crate::person::PersonId;
use crate::time::TimeOfDay;
use std::fmt;

/// One of the four base suspicious-access predicates used by the rule engine.
///
/// The paper's alert types are combinations of these (Table 1). See
/// [`RuleSet`] for the combination representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseRule {
    /// Employee and patient share the same last name.
    SameLastName,
    /// Patient is also an employee working in the same department.
    DepartmentCoworker,
    /// Employee and patient reside within 0.5 miles of each other (at
    /// distinct addresses).
    Neighbor,
    /// Employee and patient share a residential address.
    SameAddress,
}

impl BaseRule {
    /// All base rules in a fixed order (used for bitmask encoding).
    pub const ALL: [BaseRule; 4] = [
        BaseRule::SameLastName,
        BaseRule::DepartmentCoworker,
        BaseRule::Neighbor,
        BaseRule::SameAddress,
    ];

    fn bit(self) -> u8 {
        match self {
            BaseRule::SameLastName => 1 << 0,
            BaseRule::DepartmentCoworker => 1 << 1,
            BaseRule::Neighbor => 1 << 2,
            BaseRule::SameAddress => 1 << 3,
        }
    }
}

/// A set of triggered base rules, stored as a bitmask.
///
/// An access that triggers several base rules is regarded as a *new* combined
/// alert type (paper, Section 5), so the rule set — not the individual rules —
/// is what maps to an [`AlertTypeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RuleSet(u8);

impl RuleSet {
    /// The empty rule set (no suspicious predicate triggered).
    pub const EMPTY: RuleSet = RuleSet(0);

    /// Build a rule set from a list of base rules.
    #[must_use]
    pub fn from_rules(rules: &[BaseRule]) -> Self {
        let mut mask = 0;
        for r in rules {
            mask |= r.bit();
        }
        RuleSet(mask)
    }

    /// Add a base rule to the set.
    pub fn insert(&mut self, rule: BaseRule) {
        self.0 |= rule.bit();
    }

    /// Whether the set contains a given base rule.
    #[must_use]
    pub fn contains(self, rule: BaseRule) -> bool {
        self.0 & rule.bit() != 0
    }

    /// Whether no rule was triggered.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of triggered base rules.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over the triggered base rules in canonical order.
    pub fn iter(self) -> impl Iterator<Item = BaseRule> {
        BaseRule::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(none)");
        }
        let mut first = true;
        for rule in self.iter() {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            let label = match rule {
                BaseRule::SameLastName => "Last Name",
                BaseRule::DepartmentCoworker => "Department Co-worker",
                BaseRule::Neighbor => "Neighbor (<= 0.5 miles)",
                BaseRule::SameAddress => "Same Address",
            };
            write!(f, "{label}")?;
        }
        Ok(())
    }
}

/// Identifier of an alert *type* — an index into an [`AlertCatalog`].
///
/// Alert types partition alerts into classes that are equivalent for auditing
/// purposes: same audit cost, same payoff structure, same forecast model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AlertTypeId(pub u16);

impl AlertTypeId {
    /// Zero-based index of the type within its catalogue.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AlertTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Displayed 1-based to match the paper's Table 1 numbering.
        write!(f, "T{}", self.0 + 1)
    }
}

/// Static description of an alert type.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTypeInfo {
    /// Identifier (index in the catalogue).
    pub id: AlertTypeId,
    /// Human-readable description (Table 1 wording).
    pub description: String,
    /// The combination of base rules this type corresponds to.
    pub rules: RuleSet,
    /// Mean number of alerts of this type per day (Table 1).
    pub daily_mean: f64,
    /// Standard deviation of the daily count (Table 1).
    pub daily_std: f64,
}

/// The catalogue of alert types in play for a deployment.
///
/// [`AlertCatalog::paper_table1`] reproduces the seven types of the paper's
/// Table 1 together with their daily statistics; custom catalogues can be
/// assembled for other scenarios (e.g. the single-type experiment of
/// Figure 2 uses [`AlertCatalog::single_type`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AlertCatalog {
    types: Vec<AlertTypeInfo>,
}

impl AlertCatalog {
    /// Build a catalogue from explicit type descriptions.
    #[must_use]
    pub fn new(types: Vec<AlertTypeInfo>) -> Self {
        AlertCatalog { types }
    }

    /// The seven alert types of the paper's Table 1, with their daily mean and
    /// standard deviation.
    #[must_use]
    pub fn paper_table1() -> Self {
        use BaseRule::*;
        let spec: [(&str, &[BaseRule], f64, f64); 7] = [
            ("Same Last Name", &[SameLastName], 196.57, 17.30),
            ("Department Co-worker", &[DepartmentCoworker], 29.02, 5.56),
            ("Neighbor (<= 0.5 miles)", &[Neighbor], 140.46, 23.23),
            ("Same Address", &[SameAddress], 10.84, 3.73),
            (
                "Last Name; Neighbor (<= 0.5 miles)",
                &[SameLastName, Neighbor],
                25.43,
                4.51,
            ),
            (
                "Last Name; Same Address",
                &[SameLastName, SameAddress],
                15.14,
                4.10,
            ),
            (
                "Last Name; Same Address; Neighbor (<= 0.5 miles)",
                &[SameLastName, SameAddress, Neighbor],
                43.27,
                6.45,
            ),
        ];
        let types = spec
            .iter()
            .enumerate()
            .map(|(i, (desc, rules, mean, std))| AlertTypeInfo {
                id: AlertTypeId(i as u16),
                description: (*desc).to_string(),
                rules: RuleSet::from_rules(rules),
                daily_mean: *mean,
                daily_std: *std,
            })
            .collect();
        AlertCatalog { types }
    }

    /// A single-type catalogue containing only *Same Last Name*, as used by
    /// the paper's Figure 2 experiment.
    #[must_use]
    pub fn single_type() -> Self {
        let full = Self::paper_table1();
        AlertCatalog {
            types: vec![AlertTypeInfo {
                id: AlertTypeId(0),
                ..full.types[0].clone()
            }],
        }
    }

    /// Number of alert types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the catalogue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// All type descriptions, ordered by id.
    #[must_use]
    pub fn types(&self) -> &[AlertTypeInfo] {
        &self.types
    }

    /// Look up a type by id.
    #[must_use]
    pub fn get(&self, id: AlertTypeId) -> Option<&AlertTypeInfo> {
        self.types.get(id.index())
    }

    /// Iterate over all type ids.
    pub fn ids(&self) -> impl Iterator<Item = AlertTypeId> + '_ {
        (0..self.types.len()).map(|i| AlertTypeId(i as u16))
    }

    /// Daily means per type, ordered by id.
    #[must_use]
    pub fn daily_means(&self) -> Vec<f64> {
        self.types.iter().map(|t| t.daily_mean).collect()
    }

    /// Daily standard deviations per type, ordered by id.
    #[must_use]
    pub fn daily_stds(&self) -> Vec<f64> {
        self.types.iter().map(|t| t.daily_std).collect()
    }

    /// Map a set of triggered base rules to an alert type of this catalogue.
    ///
    /// The match is exact when possible. A triggered combination that is not
    /// listed (rare in practice: the paper's Table 1 covers the combinations
    /// observed in the real log) falls back to the listed type that shares the
    /// largest number of rules with the trigger, breaking ties towards the
    /// larger (more specific) listed combination. Returns `None` only when no
    /// rule at all was triggered or the catalogue shares no rule with the
    /// trigger.
    #[must_use]
    pub fn classify(&self, triggered: RuleSet) -> Option<AlertTypeId> {
        if triggered.is_empty() {
            return None;
        }
        // Exact match first.
        if let Some(t) = self.types.iter().find(|t| t.rules == triggered) {
            return Some(t.id);
        }
        // Fallback: maximise overlap, then specificity.
        let mut best: Option<(usize, usize, AlertTypeId)> = None;
        for t in &self.types {
            let overlap = t.rules.iter().filter(|r| triggered.contains(*r)).count();
            if overlap == 0 {
                continue;
            }
            let candidate = (overlap, t.rules.len(), t.id);
            if best.is_none_or(|b| (candidate.0, candidate.1) > (b.0, b.1)) {
                best = Some(candidate);
            }
        }
        best.map(|(_, _, id)| id)
    }
}

/// A single triggered alert: the unit the audit game is played over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// Day index (0-based) within the dataset.
    pub day: u32,
    /// Time of day the alert was triggered.
    pub time: TimeOfDay,
    /// Alert type.
    pub type_id: AlertTypeId,
    /// Employee whose access triggered the alert, when generated from the
    /// full access-log pipeline (absent for calibrated synthetic streams).
    pub employee: Option<PersonId>,
    /// Patient whose record was accessed, when known.
    pub patient: Option<PersonId>,
    /// Ground-truth label used by attack simulations: `false` for the routine
    /// false-positive alerts that dominate real logs, `true` when the alert
    /// was injected by an attacker model.
    pub is_attack: bool,
}

impl Alert {
    /// Convenience constructor for a benign (false-positive) alert.
    #[must_use]
    pub fn benign(day: u32, time: TimeOfDay, type_id: AlertTypeId) -> Self {
        Alert {
            day,
            time,
            type_id,
            employee: None,
            patient: None,
            is_attack: false,
        }
    }

    /// Convenience constructor for an attack alert.
    #[must_use]
    pub fn attack(day: u32, time: TimeOfDay, type_id: AlertTypeId) -> Self {
        Alert {
            day,
            time,
            type_id,
            employee: None,
            patient: None,
            is_attack: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_set_insert_contains_len() {
        let mut set = RuleSet::EMPTY;
        assert!(set.is_empty());
        set.insert(BaseRule::SameLastName);
        set.insert(BaseRule::Neighbor);
        assert!(set.contains(BaseRule::SameLastName));
        assert!(set.contains(BaseRule::Neighbor));
        assert!(!set.contains(BaseRule::SameAddress));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn rule_set_from_rules_is_order_insensitive() {
        let a = RuleSet::from_rules(&[BaseRule::SameLastName, BaseRule::SameAddress]);
        let b = RuleSet::from_rules(&[BaseRule::SameAddress, BaseRule::SameLastName]);
        assert_eq!(a, b);
    }

    #[test]
    fn rule_set_display_lists_rules() {
        let set = RuleSet::from_rules(&[BaseRule::SameLastName, BaseRule::Neighbor]);
        let text = set.to_string();
        assert!(text.contains("Last Name"));
        assert!(text.contains("Neighbor"));
        assert_eq!(RuleSet::EMPTY.to_string(), "(none)");
    }

    #[test]
    fn paper_catalog_matches_table1() {
        let cat = AlertCatalog::paper_table1();
        assert_eq!(cat.len(), 7);
        let means = cat.daily_means();
        assert!((means[0] - 196.57).abs() < 1e-9);
        assert!((means[6] - 43.27).abs() < 1e-9);
        let stds = cat.daily_stds();
        assert!((stds[2] - 23.23).abs() < 1e-9);
        assert_eq!(
            cat.get(AlertTypeId(1)).unwrap().description,
            "Department Co-worker"
        );
        assert_eq!(cat.ids().count(), 7);
    }

    #[test]
    fn single_type_catalog_is_same_last_name() {
        let cat = AlertCatalog::single_type();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.types()[0].description, "Same Last Name");
        assert!((cat.types()[0].daily_mean - 196.57).abs() < 1e-9);
    }

    #[test]
    fn classify_exact_combinations() {
        let cat = AlertCatalog::paper_table1();
        let t1 = cat.classify(RuleSet::from_rules(&[BaseRule::SameLastName]));
        assert_eq!(t1, Some(AlertTypeId(0)));
        let t7 = cat.classify(RuleSet::from_rules(&[
            BaseRule::SameLastName,
            BaseRule::SameAddress,
            BaseRule::Neighbor,
        ]));
        assert_eq!(t7, Some(AlertTypeId(6)));
        assert_eq!(cat.classify(RuleSet::EMPTY), None);
    }

    #[test]
    fn classify_falls_back_to_best_overlap() {
        let cat = AlertCatalog::paper_table1();
        // Co-worker + Neighbor is not listed in Table 1; the fallback must
        // still pick a type that shares at least one rule.
        let combo = RuleSet::from_rules(&[BaseRule::DepartmentCoworker, BaseRule::Neighbor]);
        let id = cat.classify(combo).expect("fallback classification");
        let info = cat.get(id).unwrap();
        assert!(info.rules.iter().any(|r| combo.contains(r)));
    }

    #[test]
    fn alert_constructors_set_attack_flag() {
        let t = TimeOfDay::from_hms(9, 30, 0);
        let benign = Alert::benign(3, t, AlertTypeId(2));
        let attack = Alert::attack(3, t, AlertTypeId(2));
        assert!(!benign.is_attack);
        assert!(attack.is_attack);
        assert_eq!(benign.day, 3);
        assert_eq!(attack.type_id, AlertTypeId(2));
    }

    #[test]
    fn alert_type_display_is_one_based() {
        assert_eq!(AlertTypeId(0).to_string(), "T1");
        assert_eq!(AlertTypeId(6).to_string(), "T7");
    }
}
