//! Calibrated alert-stream generation.
//!
//! The audit-game experiments need alert streams whose per-type daily volumes
//! match the paper's Table 1 and whose arrival times follow the reported
//! diurnal pattern. Rather than tuning the full access-log pipeline until its
//! rule-engine output happens to match those statistics, this module samples
//! the typed alert stream directly:
//!
//! 1. for each type, draw the day's alert count from a normal distribution
//!    with the Table 1 mean/std (rounded, clamped at zero);
//! 2. place each alert at a time of day drawn from the diurnal profile;
//! 3. merge and sort all types into a single chronological stream.
//!
//! This preserves exactly the properties the SAG consumes — per-type arrival
//! volumes, their day-to-day variability and the within-day intensity shape —
//! while remaining fully synthetic.

use crate::alert::{Alert, AlertCatalog, AlertTypeId};
use crate::log::DayLog;
use crate::rng::{normal_count, poisson, weighted_index};
use crate::time::{TimeOfDay, SECONDS_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hourly intensity profile of alert arrivals over a day.
///
/// Weights are relative; they are normalised internally. Within an hour,
/// arrival times are uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    weights: [f64; 24],
}

impl DiurnalProfile {
    /// Build a profile from 24 hourly weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative/not finite.
    #[must_use]
    pub fn new(weights: [f64; 24]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "diurnal weights must be finite and nonnegative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "diurnal weights must not all be zero"
        );
        DiurnalProfile { weights }
    }

    /// A flat profile (uniform arrivals over the day) — useful for tests.
    #[must_use]
    pub fn uniform() -> Self {
        DiurnalProfile { weights: [1.0; 24] }
    }

    /// The standard healthcare-organisation workday profile described in the
    /// paper: near-silent overnight, ramp-up from 06:00, sustained peak
    /// 08:00–17:00 around shift changes, tapering evening.
    #[must_use]
    pub fn standard_hco() -> Self {
        let mut w = [0.0f64; 24];
        for (hour, weight) in w.iter_mut().enumerate() {
            *weight = match hour {
                0..=5 => 0.3,
                6 => 1.5,
                7 => 4.0,
                8..=11 => 10.0,
                12 => 8.0,
                13..=16 => 10.0,
                17 => 6.0,
                18 => 3.0,
                19..=20 => 1.5,
                21..=23 => 0.6,
                _ => unreachable!(),
            };
        }
        DiurnalProfile { weights: w }
    }

    /// The hourly weights (normalised to sum to one).
    #[must_use]
    pub fn normalized_weights(&self) -> [f64; 24] {
        let total: f64 = self.weights.iter().sum();
        let mut out = [0.0; 24];
        for (o, w) in out.iter_mut().zip(self.weights.iter()) {
            *o = w / total;
        }
        out
    }

    /// Expected fraction of daily arrivals that occur strictly after `time`.
    #[must_use]
    pub fn fraction_after(&self, time: TimeOfDay) -> f64 {
        let norm = self.normalized_weights();
        let hour = time.hour() as usize;
        let within_hour = f64::from(time.seconds() % 3600) / 3600.0;
        let mut remaining = norm[hour] * (1.0 - within_hour);
        for &w in &norm[hour + 1..] {
            remaining += w;
        }
        remaining.clamp(0.0, 1.0)
    }

    /// Sample an arrival time from the profile.
    pub fn sample_time<R: Rng + ?Sized>(&self, rng: &mut R) -> TimeOfDay {
        let hour = weighted_index(rng, &self.weights).expect("profile has positive weight");
        let second_in_hour = rng.gen_range(0..3600u32);
        TimeOfDay::from_seconds(hour as u32 * 3600 + second_in_hour)
    }
}

/// How alerts arrive within a day.
///
/// The paper's workload is [`Stationary`](ArrivalProcess::Stationary):
/// independent arrivals placed on the diurnal profile. The self-exciting
/// variant models bursty streams (a suspicious access often triggers a
/// cluster of related alerts) as a Hawkes-style branching process on top of
/// the base stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Independent arrivals on the diurnal profile (the paper's model).
    Stationary,
    /// Every alert additionally spawns `Poisson(branching)` offspring alerts
    /// of the same type, each delayed by an `Exp(mean = decay_secs)` gap.
    /// Offspring spawn offspring in turn, so `branching` must stay below 1
    /// for the cascade to stay subcritical.
    SelfExciting {
        /// Expected number of direct offspring per alert (`< 1`).
        branching: f64,
        /// Mean parent-to-offspring delay in seconds.
        decay_secs: f64,
    },
}

/// Day-over-day drift of the per-type daily volumes.
///
/// [`Flat`](VolumeTrend::Flat) keeps the catalogue's Table 1 statistics
/// stationary; [`Linear`](VolumeTrend::Linear) scales each type's daily mean
/// by `1 + slope · day` (clamped at zero), modelling populations whose alert
/// mix shifts over time — which also shifts the attacker's best-response
/// type as the game's future-alert estimates move.
#[derive(Debug, Clone, PartialEq)]
pub enum VolumeTrend {
    /// Stationary volumes (the paper's model).
    Flat,
    /// Per-type linear drift of the daily mean. Types beyond the slice drift
    /// with slope 0.
    Linear {
        /// Relative slope per day and type: `mean(day) = mean · (1 + s·day)`.
        slopes: Vec<f64>,
    },
}

impl VolumeTrend {
    /// Multiplicative volume factor of `type_index` on `day`.
    #[must_use]
    pub fn factor(&self, type_index: usize, day: u32) -> f64 {
        match self {
            VolumeTrend::Flat => 1.0,
            VolumeTrend::Linear { slopes } => {
                let slope = slopes.get(type_index).copied().unwrap_or(0.0);
                (1.0 + slope * f64::from(day)).max(0.0)
            }
        }
    }
}

/// Configuration of the calibrated stream generator.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Alert catalogue (supplies the per-type daily mean/std).
    pub catalog: AlertCatalog,
    /// Diurnal arrival profile.
    pub diurnal: DiurnalProfile,
    /// RNG seed for reproducible streams.
    pub seed: u64,
    /// Within-day arrival process.
    pub arrivals: ArrivalProcess,
    /// Day-over-day volume drift.
    pub trend: VolumeTrend,
}

impl StreamConfig {
    /// A stationary, trend-free stream over a custom catalogue — the model
    /// every paper experiment uses.
    #[must_use]
    pub fn stationary(catalog: AlertCatalog, diurnal: DiurnalProfile, seed: u64) -> Self {
        StreamConfig {
            catalog,
            diurnal,
            seed,
            arrivals: ArrivalProcess::Stationary,
            trend: VolumeTrend::Flat,
        }
    }

    /// The paper's 7-type configuration (Table 1 statistics, workday profile).
    #[must_use]
    pub fn paper_multi_type(seed: u64) -> Self {
        Self::stationary(
            AlertCatalog::paper_table1(),
            DiurnalProfile::standard_hco(),
            seed,
        )
    }

    /// The paper's single-type configuration (Figure 2: *Same Last Name*).
    #[must_use]
    pub fn paper_single_type(seed: u64) -> Self {
        Self::stationary(
            AlertCatalog::single_type(),
            DiurnalProfile::standard_hco(),
            seed,
        )
    }

    /// Replace the arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Replace the volume trend.
    #[must_use]
    pub fn with_trend(mut self, trend: VolumeTrend) -> Self {
        self.trend = trend;
        self
    }
}

/// Generates calibrated daily alert streams.
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    config: StreamConfig,
    rng: StdRng,
}

impl StreamGenerator {
    /// Create a generator from a configuration.
    #[must_use]
    pub fn new(config: StreamConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        StreamGenerator { config, rng }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Generate one day of alerts, sorted chronologically.
    pub fn generate_day(&mut self, day: u32) -> DayLog {
        let mut alerts = Vec::new();
        let catalog = self.config.catalog.clone();
        for (index, info) in catalog.types().iter().enumerate() {
            let factor = self.config.trend.factor(index, day);
            let count = normal_count(
                &mut self.rng,
                info.daily_mean * factor,
                info.daily_std * factor.max(f64::MIN_POSITIVE).sqrt(),
            );
            let base_start = alerts.len();
            for _ in 0..count {
                let time = self.config.diurnal.sample_time(&mut self.rng);
                alerts.push(Alert::benign(day, time, info.id));
            }
            if let ArrivalProcess::SelfExciting {
                branching,
                decay_secs,
            } = self.config.arrivals
            {
                self.spawn_offspring(day, info.id, base_start, branching, decay_secs, &mut alerts);
            }
        }
        alerts.sort_by_key(|a| (a.time, a.type_id));
        DayLog::new(day, alerts)
    }

    /// Grow the self-exciting cascade: every alert from `base_start` on (base
    /// arrivals and offspring alike) spawns `Poisson(branching)` children of
    /// the same type at exponentially distributed delays, truncated at the
    /// end of the day. A hard cap bounds supercritical configurations.
    fn spawn_offspring(
        &mut self,
        day: u32,
        type_id: AlertTypeId,
        base_start: usize,
        branching: f64,
        decay_secs: f64,
        alerts: &mut Vec<Alert>,
    ) {
        let base_count = alerts.len() - base_start;
        let cap = alerts.len() + base_count * 10 + 100;
        let mut cursor = base_start;
        while cursor < alerts.len() && alerts.len() < cap {
            let parent_secs = alerts[cursor].time.seconds();
            cursor += 1;
            let children = poisson(&mut self.rng, branching.max(0.0));
            for _ in 0..children {
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let delay = -u.ln() * decay_secs;
                let child_secs = f64::from(parent_secs) + delay;
                if child_secs >= f64::from(SECONDS_PER_DAY) {
                    continue; // the cascade spills past the audit cycle
                }
                alerts.push(Alert::benign(
                    day,
                    TimeOfDay::from_seconds(child_secs as u32),
                    type_id,
                ));
            }
        }
    }

    /// Generate `num_days` consecutive days (day indices `0..num_days`).
    pub fn generate_days(&mut self, num_days: u32) -> Vec<DayLog> {
        (0..num_days).map(|d| self.generate_day(d)).collect()
    }

    /// Generate the paper's experimental layout: `historical` days of history
    /// followed by `testing` days, as `(history, test_days)`.
    pub fn generate_split(&mut self, historical: u32, testing: u32) -> (Vec<DayLog>, Vec<DayLog>) {
        let history = self.generate_days(historical);
        let tests = (historical..historical + testing)
            .map(|d| self.generate_day(d))
            .collect();
        (history, tests)
    }
}

/// Count alerts per type in a slice of alerts.
#[must_use]
pub fn count_by_type(alerts: &[Alert], num_types: usize) -> Vec<usize> {
    let mut counts = vec![0usize; num_types];
    for a in alerts {
        if a.type_id.index() < num_types {
            counts[a.type_id.index()] += 1;
        }
    }
    counts
}

/// Empirical per-type mean and standard deviation of daily counts across days.
#[must_use]
pub fn daily_count_stats(days: &[DayLog], num_types: usize) -> (Vec<f64>, Vec<f64>) {
    let n = days.len().max(1) as f64;
    let per_day: Vec<Vec<usize>> = days
        .iter()
        .map(|d| count_by_type(d.alerts(), num_types))
        .collect();
    let mut means = vec![0.0; num_types];
    let mut stds = vec![0.0; num_types];
    for t in 0..num_types {
        let mean = per_day.iter().map(|c| c[t] as f64).sum::<f64>() / n;
        let var = per_day
            .iter()
            .map(|c| (c[t] as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        means[t] = mean;
        stds[t] = var.sqrt();
    }
    (means, stds)
}

/// A fixed alert type id helper for tests and examples (`T1` = index 0).
#[must_use]
pub fn type_id(index: u16) -> AlertTypeId {
    AlertTypeId(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_profile_peaks_in_working_hours() {
        let profile = DiurnalProfile::standard_hco();
        let w = profile.normalized_weights();
        assert!(w[10] > w[3] * 10.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_after_is_monotone_decreasing() {
        let profile = DiurnalProfile::standard_hco();
        let mut last = 1.0 + 1e-12;
        for hour in 0..24 {
            let f = profile.fraction_after(TimeOfDay::from_hms(hour, 0, 0));
            assert!(
                f <= last + 1e-12,
                "fraction_after must decrease over the day"
            );
            last = f;
        }
        assert!(profile.fraction_after(TimeOfDay::MIDNIGHT) > 0.999);
        assert!(profile.fraction_after(TimeOfDay::from_hms(23, 59, 59)) < 0.01);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_weights_are_rejected() {
        let mut w = [1.0; 24];
        w[5] = -1.0;
        let _ = DiurnalProfile::new(w);
    }

    #[test]
    fn generated_day_is_sorted_and_typed() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(1));
        let day = gen.generate_day(0);
        assert!(!day.alerts().is_empty());
        for pair in day.alerts().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for a in day.alerts() {
            assert!(a.type_id.index() < 7);
            assert!(!a.is_attack);
            assert_eq!(a.day, 0);
        }
    }

    #[test]
    fn daily_volumes_match_table1_statistics() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(7));
        let days = gen.generate_days(56);
        let catalog = AlertCatalog::paper_table1();
        let (means, stds) = daily_count_stats(&days, catalog.len());
        for (t, info) in catalog.types().iter().enumerate() {
            let tolerance = 4.0 * info.daily_std / (days.len() as f64).sqrt() + 1.0;
            assert!(
                (means[t] - info.daily_mean).abs() < tolerance,
                "type {t}: mean {} vs expected {} (tol {tolerance})",
                means[t],
                info.daily_mean
            );
            assert!(
                stds[t] < info.daily_std * 2.0 + 2.0,
                "type {t}: std {} is wildly off expected {}",
                stds[t],
                info.daily_std
            );
        }
    }

    #[test]
    fn single_type_stream_contains_only_type0() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_single_type(3));
        let day = gen.generate_day(0);
        assert!(day.alerts().iter().all(|a| a.type_id == AlertTypeId(0)));
        // The per-day volume must resemble the Same Last Name mean (196.57).
        let n = day.alerts().len() as f64;
        assert!(n > 120.0 && n < 280.0, "unexpected single-type volume {n}");
    }

    #[test]
    fn streams_are_reproducible_by_seed() {
        let mut a = StreamGenerator::new(StreamConfig::paper_multi_type(99));
        let mut b = StreamGenerator::new(StreamConfig::paper_multi_type(99));
        let da = a.generate_day(0);
        let db = b.generate_day(0);
        assert_eq!(da.alerts(), db.alerts());
        let mut c = StreamGenerator::new(StreamConfig::paper_multi_type(100));
        assert_ne!(da.alerts(), c.generate_day(0).alerts());
    }

    #[test]
    fn split_generates_disjoint_day_indices() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(5));
        let (history, tests) = gen.generate_split(41, 4);
        assert_eq!(history.len(), 41);
        assert_eq!(tests.len(), 4);
        assert_eq!(history.last().unwrap().day(), 40);
        assert_eq!(tests[0].day(), 41);
        assert_eq!(tests[3].day(), 44);
    }

    #[test]
    fn self_exciting_arrivals_add_offspring_clusters() {
        let stationary = {
            let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(31));
            let days = gen.generate_days(20);
            days.iter().map(DayLog::len).sum::<usize>() as f64 / 20.0
        };
        let bursty = {
            let config =
                StreamConfig::paper_multi_type(31).with_arrivals(ArrivalProcess::SelfExciting {
                    branching: 0.4,
                    decay_secs: 600.0,
                });
            let mut gen = StreamGenerator::new(config);
            let days = gen.generate_days(20);
            for day in &days {
                for pair in day.alerts().windows(2) {
                    assert!(pair[0].time <= pair[1].time);
                }
            }
            days.iter().map(DayLog::len).sum::<usize>() as f64 / 20.0
        };
        // A subcritical cascade with branching b multiplies volume by
        // ~1/(1-b); at b = 0.4 that is ~1.67x (minus end-of-day truncation).
        assert!(
            bursty > stationary * 1.3,
            "bursty mean {bursty} vs stationary {stationary}"
        );
        assert!(bursty < stationary * 2.0);
    }

    #[test]
    fn linear_trend_drifts_volumes_over_days() {
        let slopes = vec![-0.03, 0.0, 0.05];
        let trend = VolumeTrend::Linear {
            slopes: slopes.clone(),
        };
        assert_eq!(trend.factor(0, 0), 1.0);
        assert!((trend.factor(0, 10) - 0.7).abs() < 1e-12);
        assert!((trend.factor(2, 10) - 1.5).abs() < 1e-12);
        // Slope defaults to zero past the slice, and factors clamp at zero.
        assert_eq!(trend.factor(9, 50), 1.0);
        assert_eq!(trend.factor(0, 40), 0.0);

        let config = StreamConfig::paper_multi_type(13).with_trend(trend);
        let mut gen = StreamGenerator::new(config);
        let days = gen.generate_days(30);
        let late: usize = days[25..]
            .iter()
            .map(|d| count_by_type(d.alerts(), 7)[6])
            .sum();
        // Type 7 has slope 0 here (beyond the slice) so it stays flat; type 1
        // shrinks by 3% per day.
        let early_t1: usize = days[..5]
            .iter()
            .map(|d| count_by_type(d.alerts(), 7)[0])
            .sum();
        let late_t1: usize = days[25..]
            .iter()
            .map(|d| count_by_type(d.alerts(), 7)[0])
            .sum();
        assert!(late_t1 < early_t1 / 2, "t1 {early_t1} -> {late_t1}");
        assert!(late > late_t1, "flat type overtaken: {late} vs {late_t1}");
    }

    #[test]
    fn stationary_flat_config_matches_paper_constructor() {
        let a = StreamConfig::paper_multi_type(5);
        assert_eq!(a.arrivals, ArrivalProcess::Stationary);
        assert_eq!(a.trend, VolumeTrend::Flat);
        let b = StreamConfig::stationary(
            AlertCatalog::paper_table1(),
            DiurnalProfile::standard_hco(),
            5,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn count_by_type_counts_all_alerts() {
        let mut gen = StreamGenerator::new(StreamConfig::paper_multi_type(13));
        let day = gen.generate_day(0);
        let counts = count_by_type(day.alerts(), 7);
        assert_eq!(counts.iter().sum::<usize>(), day.alerts().len());
    }
}
