//! The alert rule engine: turning access events into typed alerts.
//!
//! This is the breach-detection layer that sits in front of the audit game.
//! Every access is checked against the four base predicates of the paper;
//! accesses that trigger at least one predicate become alerts, typed by the
//! *combination* of triggered predicates via [`AlertCatalog::classify`].

use crate::access::AccessEvent;
use crate::alert::{Alert, AlertCatalog, BaseRule, RuleSet};
use crate::population::Population;

/// The rule engine, parameterised by the alert catalogue used for typing.
#[derive(Debug, Clone)]
pub struct RuleEngine {
    catalog: AlertCatalog,
    /// When true, self-accesses (an employee opening their own record) are
    /// ignored rather than flagged — they trivially share every attribute and
    /// would otherwise dominate the combined alert types.
    skip_self_access: bool,
}

impl RuleEngine {
    /// Create a rule engine over a catalogue.
    #[must_use]
    pub fn new(catalog: AlertCatalog) -> Self {
        RuleEngine {
            catalog,
            skip_self_access: true,
        }
    }

    /// Configure whether self-accesses are skipped (default: yes).
    #[must_use]
    pub fn with_skip_self_access(mut self, skip: bool) -> Self {
        self.skip_self_access = skip;
        self
    }

    /// The catalogue used for typing.
    #[must_use]
    pub fn catalog(&self) -> &AlertCatalog {
        &self.catalog
    }

    /// Evaluate the base predicates for a single access.
    #[must_use]
    pub fn triggered_rules(&self, population: &Population, event: &AccessEvent) -> RuleSet {
        let mut set = RuleSet::EMPTY;
        if self.skip_self_access && event.employee == event.patient {
            return set;
        }
        let employee = population.person(event.employee);
        let patient = population.person(event.patient);

        if employee.last_name == patient.last_name {
            set.insert(BaseRule::SameLastName);
        }
        if population.same_department(event.employee, event.patient) {
            set.insert(BaseRule::DepartmentCoworker);
        }
        if employee.shares_address_with(patient) {
            set.insert(BaseRule::SameAddress);
        }
        if employee.is_neighbor_of(patient) {
            set.insert(BaseRule::Neighbor);
        }
        set
    }

    /// Run the engine over a single access, producing an alert if any rule
    /// fires and the combination maps to a catalogue type.
    #[must_use]
    pub fn evaluate(&self, population: &Population, event: &AccessEvent) -> Option<Alert> {
        let triggered = self.triggered_rules(population, event);
        let type_id = self.catalog.classify(triggered)?;
        Some(Alert {
            day: event.day,
            time: event.time,
            type_id,
            employee: Some(event.employee),
            patient: Some(event.patient),
            is_attack: false,
        })
    }

    /// Run the engine over a full day of accesses, preserving time order.
    #[must_use]
    pub fn evaluate_day(&self, population: &Population, events: &[AccessEvent]) -> Vec<Alert> {
        events
            .iter()
            .filter_map(|e| self.evaluate(population, e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessConfig, AccessGenerator};
    use crate::alert::AlertTypeId;
    use crate::geo::{Address, Location};
    use crate::names::NameId;
    use crate::person::{DepartmentId, Person, PersonId, Role};
    use crate::population::{Population, PopulationConfig};
    use crate::time::TimeOfDay;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generated_population(seed: u64) -> Population {
        let mut rng = StdRng::seed_from_u64(seed);
        Population::generate(&PopulationConfig::tiny(), &mut rng)
    }

    fn access(day: u32, employee: PersonId, patient: PersonId) -> AccessEvent {
        AccessEvent {
            day,
            time: TimeOfDay::from_hms(10, 0, 0),
            employee,
            patient,
        }
    }

    /// Find (or fail to find) a pair of people with a specific relationship in
    /// a generated population.
    fn find_pair(
        pop: &Population,
        pred: impl Fn(&Person, &Person) -> bool,
    ) -> Option<(PersonId, PersonId)> {
        for &e in pop.employees() {
            for &p in pop.patients() {
                if e != p && pred(pop.person(e), pop.person(p)) {
                    return Some((e, p));
                }
            }
        }
        None
    }

    #[test]
    fn same_last_name_rule_fires() {
        let pop = generated_population(31);
        let engine = RuleEngine::new(AlertCatalog::paper_table1());
        let (e, p) = find_pair(&pop, |a, b| a.last_name == b.last_name)
            .expect("tiny population contains a name collision");
        let rules = engine.triggered_rules(&pop, &access(0, e, p));
        assert!(rules.contains(BaseRule::SameLastName));
    }

    #[test]
    fn department_coworker_rule_fires_only_for_employee_patients() {
        let pop = generated_population(32);
        let engine = RuleEngine::new(AlertCatalog::paper_table1());
        if let Some((e, p)) = find_pair(&pop, |a, b| {
            a.role.department().is_some()
                && b.role.department().is_some()
                && a.role.department() == b.role.department()
        }) {
            let rules = engine.triggered_rules(&pop, &access(0, e, p));
            assert!(rules.contains(BaseRule::DepartmentCoworker));
        }
        // A plain patient can never trigger the co-worker rule.
        let plain_patient = pop
            .patients()
            .iter()
            .copied()
            .find(|id| pop.person(*id).role.department().is_none())
            .expect("tiny population has plain patients");
        let employee = pop.employees()[0];
        let rules = engine.triggered_rules(&pop, &access(0, employee, plain_patient));
        assert!(!rules.contains(BaseRule::DepartmentCoworker));
    }

    #[test]
    fn self_access_is_skipped_by_default_but_configurable() {
        let pop = generated_population(33);
        let both = pop
            .employees()
            .iter()
            .copied()
            .find(|id| pop.person(*id).role.is_patient())
            .expect("an employee-patient exists");
        let engine = RuleEngine::new(AlertCatalog::paper_table1());
        assert!(engine
            .triggered_rules(&pop, &access(0, both, both))
            .is_empty());
        let engine = engine.with_skip_self_access(false);
        let rules = engine.triggered_rules(&pop, &access(0, both, both));
        assert!(rules.contains(BaseRule::SameLastName));
        assert!(rules.contains(BaseRule::SameAddress));
    }

    #[test]
    fn evaluate_produces_typed_alert_with_actors() {
        let pop = generated_population(34);
        let engine = RuleEngine::new(AlertCatalog::paper_table1());
        let (e, p) =
            find_pair(&pop, |a, b| a.last_name == b.last_name).expect("name collision exists");
        let alert = engine
            .evaluate(&pop, &access(5, e, p))
            .expect("alert produced");
        assert_eq!(alert.day, 5);
        assert_eq!(alert.employee, Some(e));
        assert_eq!(alert.patient, Some(p));
        assert!(!alert.is_attack);
        // The type must include the SameLastName rule.
        let info = engine.catalog().get(alert.type_id).unwrap();
        assert!(info.rules.contains(BaseRule::SameLastName));
    }

    #[test]
    fn evaluate_returns_none_for_unrelated_pair() {
        // Hand-build a population of two completely unrelated people.
        let people = vec![
            Person {
                id: PersonId(0),
                last_name: NameId(0),
                addresses: vec![Address::new(0, Location::new(0.0, 0.0))],
                role: Role::Employee {
                    department: DepartmentId(0),
                },
            },
            Person {
                id: PersonId(1),
                last_name: NameId(1),
                addresses: vec![Address::new(1, Location::new(5.0, 5.0))],
                role: Role::Patient,
            },
        ];
        // Population::generate is the only constructor, so emulate the check
        // at the rule level directly using a generated population's engine:
        // the unrelated pair logic is covered through triggered_rules being
        // empty for people that share nothing.
        let pop = generated_population(35);
        let engine = RuleEngine::new(AlertCatalog::paper_table1());
        if let Some((e, p)) = find_pair(&pop, |a, b| {
            a.last_name != b.last_name
                && !a.shares_address_with(b)
                && !a.is_neighbor_of(b)
                && (a.role.department() != b.role.department() || b.role.department().is_none())
        }) {
            assert!(engine.evaluate(&pop, &access(0, e, p)).is_none());
        }
        let _ = people;
    }

    #[test]
    fn full_pipeline_produces_alerts_of_every_base_kind_over_many_days() {
        let mut rng = StdRng::seed_from_u64(36);
        let pop = Population::generate(&PopulationConfig::tiny(), &mut rng);
        let gen = AccessGenerator::new(AccessConfig::tiny());
        let engine = RuleEngine::new(AlertCatalog::paper_table1());
        let mut by_type = vec![0usize; 7];
        for day in 0..30 {
            let accesses = gen.generate_day(&pop, day, &mut rng);
            for alert in engine.evaluate_day(&pop, &accesses) {
                by_type[alert.type_id.index()] += 1;
            }
        }
        // The dominant single-rule types must all occur in a month of data.
        assert!(by_type[0] > 0, "Same Last Name alerts missing: {by_type:?}");
        assert!(by_type.iter().sum::<usize>() > 0);
        // Alerts are a small fraction of accesses (mostly false positives, but
        // not everything is an alert).
        let _ = AlertTypeId(0);
    }

    #[test]
    fn evaluate_day_preserves_time_order() {
        let mut rng = StdRng::seed_from_u64(37);
        let pop = Population::generate(&PopulationConfig::tiny(), &mut rng);
        let gen = AccessGenerator::new(AccessConfig::tiny());
        let engine = RuleEngine::new(AlertCatalog::paper_table1());
        let accesses = gen.generate_day(&pop, 0, &mut rng);
        let alerts = engine.evaluate_day(&pop, &accesses);
        for pair in alerts.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }
}
