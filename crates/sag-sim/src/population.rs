//! Synthetic population of employees and patients.

use crate::geo::{Address, Location};
use crate::names::{NameId, NamePool};
use crate::person::{DepartmentId, Person, PersonId, Role};
use crate::rng::weighted_index;
use rand::Rng;

/// Parameters of the synthetic population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Number of hospital employees.
    pub num_employees: usize,
    /// Number of patients (excluding employees who are also patients).
    pub num_patients: usize,
    /// Fraction of employees who are also patients of the hospital.
    pub employee_patient_fraction: f64,
    /// Number of departments.
    pub num_departments: usize,
    /// Number of extra rare surnames to add to the pool (tunes the *Same Last
    /// Name* collision rate).
    pub extra_rare_names: usize,
    /// Number of distinct residential addresses.
    pub num_addresses: usize,
    /// Side length of the (square) metropolitan area in miles.
    pub city_size_miles: f64,
    /// Probability that a person registers a second address.
    pub second_address_probability: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            num_employees: 1_500,
            num_patients: 20_000,
            employee_patient_fraction: 0.15,
            num_departments: 40,
            extra_rare_names: 2_000,
            num_addresses: 8_000,
            city_size_miles: 12.0,
            second_address_probability: 0.08,
        }
    }
}

impl PopulationConfig {
    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        PopulationConfig {
            num_employees: 40,
            num_patients: 300,
            employee_patient_fraction: 0.2,
            num_departments: 5,
            extra_rare_names: 20,
            num_addresses: 120,
            city_size_miles: 4.0,
            second_address_probability: 0.15,
        }
    }
}

/// The generated world: people, the name pool and the address book.
#[derive(Debug, Clone)]
pub struct Population {
    people: Vec<Person>,
    employees: Vec<PersonId>,
    patients: Vec<PersonId>,
    name_pool: NamePool,
    addresses: Vec<Address>,
    config: PopulationConfig,
}

impl Population {
    /// Generate a population from a configuration and RNG.
    pub fn generate<R: Rng + ?Sized>(config: &PopulationConfig, rng: &mut R) -> Self {
        let name_pool = NamePool::default_pool(config.extra_rare_names);

        // Address book: cluster addresses around a few dense neighbourhoods so
        // that the Neighbor rule has realistic hit rates.
        let num_clusters = (config.num_addresses / 200).max(4);
        let clusters: Vec<Location> = (0..num_clusters)
            .map(|_| {
                Location::new(
                    rng.gen_range(0.0..config.city_size_miles),
                    rng.gen_range(0.0..config.city_size_miles),
                )
            })
            .collect();
        let addresses: Vec<Address> = (0..config.num_addresses)
            .map(|i| {
                let cluster = clusters[rng.gen_range(0..clusters.len())];
                let loc = Location::new(
                    (cluster.x + crate::rng::normal(rng, 0.0, 0.4))
                        .clamp(0.0, config.city_size_miles),
                    (cluster.y + crate::rng::normal(rng, 0.0, 0.4))
                        .clamp(0.0, config.city_size_miles),
                );
                Address::new(i as u32, loc)
            })
            .collect();

        let mut people = Vec::with_capacity(config.num_employees + config.num_patients);
        let mut employees = Vec::new();
        let mut patients = Vec::new();

        let sample_addresses = |rng: &mut R| -> Vec<Address> {
            let mut addrs = vec![addresses[rng.gen_range(0..addresses.len())]];
            if rng.gen_bool(config.second_address_probability.clamp(0.0, 1.0)) {
                addrs.push(addresses[rng.gen_range(0..addresses.len())]);
            }
            addrs
        };

        for i in 0..config.num_employees {
            let id = PersonId(people.len() as u32);
            let department = DepartmentId(rng.gen_range(0..config.num_departments.max(1)) as u16);
            let also_patient = rng.gen_bool(config.employee_patient_fraction.clamp(0.0, 1.0));
            let role = if also_patient {
                Role::EmployeePatient { department }
            } else {
                Role::Employee { department }
            };
            let person = Person {
                id,
                last_name: name_pool.sample(rng),
                addresses: sample_addresses(rng),
                role,
            };
            employees.push(id);
            if also_patient {
                patients.push(id);
            }
            people.push(person);
            let _ = i;
        }
        for _ in 0..config.num_patients {
            let id = PersonId(people.len() as u32);
            let person = Person {
                id,
                last_name: name_pool.sample(rng),
                addresses: sample_addresses(rng),
                role: Role::Patient,
            };
            patients.push(id);
            people.push(person);
        }

        Population {
            people,
            employees,
            patients,
            name_pool,
            addresses,
            config: config.clone(),
        }
    }

    /// All people.
    #[must_use]
    pub fn people(&self) -> &[Person] {
        &self.people
    }

    /// The city's address book.
    #[must_use]
    pub fn addresses(&self) -> &[Address] {
        &self.addresses
    }

    /// Look up a person.
    #[must_use]
    pub fn person(&self, id: PersonId) -> &Person {
        &self.people[id.0 as usize]
    }

    /// Ids of everyone who can act as an accessing employee.
    #[must_use]
    pub fn employees(&self) -> &[PersonId] {
        &self.employees
    }

    /// Ids of everyone who has a patient record.
    #[must_use]
    pub fn patients(&self) -> &[PersonId] {
        &self.patients
    }

    /// The name pool used by this population.
    #[must_use]
    pub fn name_pool(&self) -> &NamePool {
        &self.name_pool
    }

    /// The configuration the population was generated from.
    #[must_use]
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Textual last name of a person (for exports and debugging).
    #[must_use]
    pub fn last_name_of(&self, id: PersonId) -> &str {
        self.name_pool.name(self.person(id).last_name)
    }

    /// Sample an employee id uniformly.
    pub fn sample_employee<R: Rng + ?Sized>(&self, rng: &mut R) -> PersonId {
        self.employees[rng.gen_range(0..self.employees.len())]
    }

    /// Sample a patient id, weighted so that a small set of "active" patients
    /// receives most accesses (mimicking inpatient stays).
    pub fn sample_patient<R: Rng + ?Sized>(&self, rng: &mut R) -> PersonId {
        // Weight decays with index: earlier patients are "more active".
        let n = self.patients.len();
        let idx = {
            let weights: Vec<f64> = (0..n.min(64)).map(|i| 1.0 / (1.0 + i as f64)).collect();
            if rng.gen_bool(0.3) {
                // 30% of accesses go to the most active patients...
                weighted_index(rng, &weights).unwrap_or(0)
            } else {
                // ...the rest are spread uniformly.
                rng.gen_range(0..n)
            }
        };
        self.patients[idx.min(n - 1)]
    }

    /// Share a last name?
    #[must_use]
    pub fn same_last_name(&self, a: PersonId, b: PersonId) -> bool {
        self.person(a).last_name == self.person(b).last_name
    }

    /// Same-department co-workers? (Both must be employees.)
    #[must_use]
    pub fn same_department(&self, a: PersonId, b: PersonId) -> bool {
        match (
            self.person(a).role.department(),
            self.person(b).role.department(),
        ) {
            (Some(d1), Some(d2)) => d1 == d2,
            _ => false,
        }
    }

    /// Expose a name id for tests.
    #[must_use]
    pub fn last_name_id(&self, id: PersonId) -> NameId {
        self.person(id).last_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_population(seed: u64) -> Population {
        let mut rng = StdRng::seed_from_u64(seed);
        Population::generate(&PopulationConfig::tiny(), &mut rng)
    }

    #[test]
    fn generation_respects_sizes() {
        let config = PopulationConfig::tiny();
        let pop = tiny_population(1);
        assert_eq!(pop.employees().len(), config.num_employees);
        assert!(pop.patients().len() >= config.num_patients);
        assert_eq!(
            pop.people().len(),
            config.num_employees + config.num_patients
        );
        assert_eq!(pop.config(), &config);
    }

    #[test]
    fn employee_patients_appear_in_both_lists() {
        let pop = tiny_population(2);
        let overlap = pop
            .employees()
            .iter()
            .filter(|id| pop.patients().contains(id))
            .count();
        assert!(overlap > 0, "some employees must also be patients");
        for id in pop.patients() {
            assert!(pop.person(*id).role.is_patient());
        }
        for id in pop.employees() {
            assert!(pop.person(*id).role.is_employee());
        }
    }

    #[test]
    fn every_person_has_an_address_and_name() {
        let pop = tiny_population(3);
        for p in pop.people() {
            assert!(!p.addresses.is_empty());
            assert!(p.addresses.len() <= 2);
            assert!(!pop.name_pool().name(p.last_name).is_empty());
        }
    }

    #[test]
    fn sampling_returns_valid_ids() {
        let pop = tiny_population(4);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let e = pop.sample_employee(&mut rng);
            let p = pop.sample_patient(&mut rng);
            assert!(pop.person(e).role.is_employee());
            assert!(pop.person(p).role.is_patient());
        }
    }

    #[test]
    fn relations_are_symmetric() {
        let pop = tiny_population(5);
        let ids: Vec<PersonId> = pop.people().iter().map(|p| p.id).take(30).collect();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(pop.same_last_name(a, b), pop.same_last_name(b, a));
                assert_eq!(pop.same_department(a, b), pop.same_department(b, a));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = tiny_population(7);
        let b = tiny_population(7);
        assert_eq!(a.people().len(), b.people().len());
        for (x, y) in a.people().iter().zip(b.people()) {
            assert_eq!(x, y);
        }
    }
}
