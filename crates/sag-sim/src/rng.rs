//! Small sampling utilities on top of [`rand`].
//!
//! The workspace deliberately avoids a dependency on `rand_distr`; the only
//! non-uniform distributions the simulator needs are the normal (daily alert
//! counts, Table 1) and the Poisson (arrival models), both of which have
//! simple, well-known sampling routines implemented here.

use rand::Rng;

/// Draw a standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln(u1) to -inf.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draw a Poisson variate with rate `lambda`.
///
/// Uses Knuth's multiplication method for small rates and a normal
/// approximation (rounded, clamped at zero) for large rates, which is more
/// than accurate enough for the arrival volumes in this simulator.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k: u64 = 0;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0f64..1.0);
            if p <= l {
                return k;
            }
            k += 1;
            // Guard against pathological RNGs returning 1.0 repeatedly.
            if k > 10_000 {
                return k;
            }
        }
    }
    let sample = normal(rng, lambda, lambda.sqrt()).round();
    if sample < 0.0 {
        0
    } else {
        sample as u64
    }
}

/// Draw a nonnegative, rounded count from a normal distribution — the model
/// used for the per-type daily alert totals of Table 1.
pub fn normal_count<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> u64 {
    let sample = normal(rng, mean, std_dev).round();
    if sample < 0.0 {
        0
    } else {
        sample as u64
    }
}

/// Sample an index from a discrete distribution given by nonnegative weights.
///
/// Returns `None` when the weights sum to zero (or the slice is empty).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            if target < w {
                return Some(i);
            }
            target -= w;
        }
    }
    // Floating-point round-off: return the last positive-weight index.
    weights.iter().rposition(|&w| w.is_finite() && w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_matches_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn poisson_matches_mean_small_and_large_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        for &lambda in &[0.5, 4.0, 50.0, 200.0] {
            let n = 5_000;
            let mean = (0..n)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < 0.1 * lambda.max(1.0),
                "lambda {lambda}: sample mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn normal_count_is_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            // Mean near zero with large std would go negative without clamping.
            let c = normal_count(&mut rng, 1.0, 5.0);
            assert!(c < 1000);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            let idx = weighted_index(&mut rng, &weights).unwrap();
            counts[idx] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(weighted_index(&mut rng, &[]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, 2.0]), Some(1));
        assert_eq!(weighted_index(&mut rng, &[f64::NAN, 1.0]), Some(1));
    }
}
