//! In-memory alert log store.
//!
//! A [`DayLog`] is the chronological list of alerts triggered during one audit
//! cycle; an [`AlertLog`] is a multi-day collection that can be split into the
//! historical and testing segments used by the paper's evaluation (41 days of
//! history, 1 testing day, repeated over 15 groups).

use crate::alert::{Alert, AlertTypeId};
use crate::time::TimeOfDay;

/// Alerts triggered during one day, in chronological order.
#[derive(Debug, Clone, PartialEq)]
pub struct DayLog {
    day: u32,
    alerts: Vec<Alert>,
}

impl DayLog {
    /// Build a day log; alerts are sorted by time if not already.
    #[must_use]
    pub fn new(day: u32, mut alerts: Vec<Alert>) -> Self {
        alerts.sort_by_key(|a| a.time);
        DayLog { day, alerts }
    }

    /// Day index.
    #[must_use]
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Alerts in chronological order.
    #[must_use]
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Number of alerts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// Whether the day had no alerts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Number of alerts of a given type.
    #[must_use]
    pub fn count_of_type(&self, type_id: AlertTypeId) -> usize {
        self.alerts.iter().filter(|a| a.type_id == type_id).count()
    }

    /// Number of alerts of a given type strictly after `time`.
    #[must_use]
    pub fn count_of_type_after(&self, type_id: AlertTypeId, time: TimeOfDay) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.type_id == type_id && a.time > time)
            .count()
    }

    /// Insert an additional alert (e.g. an injected attack), keeping order.
    pub fn insert(&mut self, alert: Alert) {
        let pos = self.alerts.partition_point(|a| a.time <= alert.time);
        self.alerts.insert(pos, alert);
    }
}

/// A multi-day alert log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertLog {
    days: Vec<DayLog>,
}

impl AlertLog {
    /// Build a log from day logs (kept in the given order).
    #[must_use]
    pub fn new(days: Vec<DayLog>) -> Self {
        AlertLog { days }
    }

    /// Day logs in order.
    #[must_use]
    pub fn days(&self) -> &[DayLog] {
        &self.days
    }

    /// Number of days.
    #[must_use]
    pub fn num_days(&self) -> usize {
        self.days.len()
    }

    /// Whether the log holds no days.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Total number of alerts across all days.
    #[must_use]
    pub fn total_alerts(&self) -> usize {
        self.days.iter().map(DayLog::len).sum()
    }

    /// Append a day.
    pub fn push(&mut self, day: DayLog) {
        self.days.push(day);
    }

    /// The paper's rolling evaluation groups: each group pairs `history_len`
    /// consecutive days of history with the single following day as the test
    /// day. A log of 56 days with `history_len = 41` yields 15 groups.
    #[must_use]
    pub fn rolling_groups(&self, history_len: usize) -> Vec<(&[DayLog], &DayLog)> {
        if self.days.len() <= history_len {
            return Vec::new();
        }
        (0..self.days.len() - history_len)
            .map(|start| {
                let history = &self.days[start..start + history_len];
                let test = &self.days[start + history_len];
                (history, test)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertTypeId;

    fn alert(day: u32, h: u32, ty: u16) -> Alert {
        Alert::benign(day, TimeOfDay::from_hms(h, 0, 0), AlertTypeId(ty))
    }

    #[test]
    fn day_log_sorts_alerts_on_construction() {
        let log = DayLog::new(0, vec![alert(0, 15, 0), alert(0, 9, 1), alert(0, 12, 0)]);
        let hours: Vec<u32> = log.alerts().iter().map(|a| a.time.hour()).collect();
        assert_eq!(hours, vec![9, 12, 15]);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn count_queries() {
        let log = DayLog::new(0, vec![alert(0, 9, 0), alert(0, 12, 0), alert(0, 15, 1)]);
        assert_eq!(log.count_of_type(AlertTypeId(0)), 2);
        assert_eq!(log.count_of_type(AlertTypeId(1)), 1);
        assert_eq!(log.count_of_type(AlertTypeId(2)), 0);
        assert_eq!(
            log.count_of_type_after(AlertTypeId(0), TimeOfDay::from_hms(10, 0, 0)),
            1
        );
        assert_eq!(
            log.count_of_type_after(AlertTypeId(0), TimeOfDay::from_hms(16, 0, 0)),
            0
        );
    }

    #[test]
    fn insert_keeps_chronological_order() {
        let mut log = DayLog::new(0, vec![alert(0, 9, 0), alert(0, 15, 0)]);
        log.insert(alert(0, 12, 1));
        let hours: Vec<u32> = log.alerts().iter().map(|a| a.time.hour()).collect();
        assert_eq!(hours, vec![9, 12, 15]);
    }

    #[test]
    fn alert_log_totals_and_push() {
        let mut log = AlertLog::default();
        assert!(log.is_empty());
        log.push(DayLog::new(0, vec![alert(0, 9, 0)]));
        log.push(DayLog::new(1, vec![alert(1, 9, 0), alert(1, 10, 1)]));
        assert_eq!(log.num_days(), 2);
        assert_eq!(log.total_alerts(), 3);
        assert_eq!(log.days()[1].day(), 1);
    }

    #[test]
    fn rolling_groups_match_paper_layout() {
        // 56 days with 41-day history => 15 groups, like the paper.
        let days: Vec<DayLog> = (0..56)
            .map(|d| DayLog::new(d, vec![alert(d, 9, 0)]))
            .collect();
        let log = AlertLog::new(days);
        let groups = log.rolling_groups(41);
        assert_eq!(groups.len(), 15);
        assert_eq!(groups[0].0.len(), 41);
        assert_eq!(groups[0].1.day(), 41);
        assert_eq!(groups[14].1.day(), 55);
        // Not enough days => no groups.
        let small = AlertLog::new(vec![DayLog::new(0, vec![])]);
        assert!(small.rolling_groups(41).is_empty());
    }
}
