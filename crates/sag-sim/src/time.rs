//! Time-of-day representation used across the simulator and the audit engine.
//!
//! The paper's audit cycle is a single calendar day (00:00:00–23:59:59), so
//! everything is expressed as seconds since midnight. Days are identified by a
//! plain index (`u32`) — the simulation has no need for calendars, time zones
//! or leap seconds.

use std::fmt;

/// Number of seconds in an audit cycle (one day).
pub const SECONDS_PER_DAY: u32 = 24 * 60 * 60;

/// A moment within an audit cycle, measured in seconds since midnight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeOfDay(u32);

impl TimeOfDay {
    /// Midnight (start of the audit cycle).
    pub const MIDNIGHT: TimeOfDay = TimeOfDay(0);
    /// Last representable second of the cycle (23:59:59).
    pub const END_OF_DAY: TimeOfDay = TimeOfDay(SECONDS_PER_DAY - 1);

    /// Construct from seconds since midnight, clamping into the valid range.
    #[must_use]
    pub fn from_seconds(seconds: u32) -> Self {
        TimeOfDay(seconds.min(SECONDS_PER_DAY - 1))
    }

    /// Construct from an `(hour, minute, second)` triple, clamping each
    /// component into its valid range.
    #[must_use]
    pub fn from_hms(hour: u32, minute: u32, second: u32) -> Self {
        let h = hour.min(23);
        let m = minute.min(59);
        let s = second.min(59);
        TimeOfDay(h * 3600 + m * 60 + s)
    }

    /// Seconds since midnight.
    #[must_use]
    pub fn seconds(self) -> u32 {
        self.0
    }

    /// Hour component (0–23).
    #[must_use]
    pub fn hour(self) -> u32 {
        self.0 / 3600
    }

    /// Minute component (0–59).
    #[must_use]
    pub fn minute(self) -> u32 {
        (self.0 % 3600) / 60
    }

    /// Second component (0–59).
    #[must_use]
    pub fn second(self) -> u32 {
        self.0 % 60
    }

    /// Fraction of the day elapsed, in `[0, 1)`.
    #[must_use]
    pub fn fraction_of_day(self) -> f64 {
        f64::from(self.0) / f64::from(SECONDS_PER_DAY)
    }

    /// Seconds remaining until the end of the audit cycle.
    #[must_use]
    pub fn seconds_remaining(self) -> u32 {
        SECONDS_PER_DAY - self.0
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}:{:02}:{:02}",
            self.hour(),
            self.minute(),
            self.second()
        )
    }
}

impl From<TimeOfDay> for u32 {
    fn from(t: TimeOfDay) -> u32 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hms_round_trip() {
        let t = TimeOfDay::from_hms(13, 45, 30);
        assert_eq!(t.hour(), 13);
        assert_eq!(t.minute(), 45);
        assert_eq!(t.second(), 30);
        assert_eq!(t.seconds(), 13 * 3600 + 45 * 60 + 30);
        assert_eq!(t.to_string(), "13:45:30");
    }

    #[test]
    fn construction_clamps_out_of_range_values() {
        assert_eq!(
            TimeOfDay::from_seconds(SECONDS_PER_DAY + 100),
            TimeOfDay::END_OF_DAY
        );
        assert_eq!(
            TimeOfDay::from_hms(99, 99, 99),
            TimeOfDay::from_hms(23, 59, 59)
        );
    }

    #[test]
    fn ordering_and_fractions() {
        let morning = TimeOfDay::from_hms(8, 0, 0);
        let evening = TimeOfDay::from_hms(20, 0, 0);
        assert!(morning < evening);
        assert!((TimeOfDay::from_hms(12, 0, 0).fraction_of_day() - 0.5).abs() < 1e-9);
        assert_eq!(TimeOfDay::MIDNIGHT.fraction_of_day(), 0.0);
    }

    #[test]
    fn seconds_remaining_complements_elapsed() {
        let t = TimeOfDay::from_hms(6, 0, 0);
        assert_eq!(t.seconds() + t.seconds_remaining(), SECONDS_PER_DAY);
        assert_eq!(TimeOfDay::MIDNIGHT.seconds_remaining(), SECONDS_PER_DAY);
    }
}
