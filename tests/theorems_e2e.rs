//! Theorem-level integration tests: the paper's Theorems 1–4 checked on real
//! engine runs over calibrated alert streams (not just on isolated payoff
//! structures).

use sag::core::theorems;
use sag::prelude::*;

fn replay(seed: u64, single: bool) -> (EngineConfig, CycleResult) {
    let stream = if single {
        StreamConfig::paper_single_type(seed)
    } else {
        StreamConfig::paper_multi_type(seed)
    };
    let mut generator = StreamGenerator::new(stream);
    let history = generator.generate_days(15);
    let test_day = generator.generate_day(15);
    let config = if single {
        EngineConfig::paper_single_type()
    } else {
        EngineConfig::paper_multi_type()
    };
    let engine = AuditCycleEngine::new(config.clone()).unwrap();
    (config, engine.run_day(&history, &test_day).unwrap())
}

/// Theorem 1: the OSSP scheme's marginal audit probability equals the online
/// SSE coverage of the triggered type, for every alert the SAG was applied to.
#[test]
fn theorem1_marginals_match_on_engine_runs() {
    for &single in &[true, false] {
        let (_, result) = replay(101, single);
        for outcome in &result.outcomes {
            if outcome.ossp_applied {
                assert!(
                    (outcome.ossp_scheme.audit_probability() - outcome.coverage_ossp).abs() < 1e-7,
                    "alert {} marginal {} vs coverage {}",
                    outcome.index,
                    outcome.ossp_scheme.audit_probability(),
                    outcome.coverage_ossp
                );
            }
        }
    }
}

/// Theorem 2: per alert, the OSSP auditor utility is never worse than the
/// online SSE utility.
#[test]
fn theorem2_holds_per_alert_on_engine_runs() {
    for &(seed, single) in &[(5u64, true), (7, false), (11, false)] {
        let (_, result) = replay(seed, single);
        assert!(!result.is_empty());
        assert!(
            (result.fraction_ossp_not_worse() - 1.0).abs() < 1e-12,
            "seed {seed}: OSSP worse than SSE on some alert"
        );
    }
}

/// Theorem 3: the optimal scheme never audits silently (p0 = 0) for the
/// paper's payoffs.
#[test]
fn theorem3_no_silent_audit_on_engine_runs() {
    for &single in &[true, false] {
        let (_, result) = replay(13, single);
        for outcome in &result.outcomes {
            if outcome.ossp_applied {
                assert!(
                    outcome.ossp_scheme.p0.abs() < 1e-9,
                    "alert {}: p0 = {}",
                    outcome.index,
                    outcome.ossp_scheme.p0
                );
            }
        }
    }
}

/// Theorem 4: the attacker's utility under the OSSP equals his utility under
/// the online SSE (taking deterrence into account) for every applied alert.
#[test]
fn theorem4_attacker_utility_unchanged_on_engine_runs() {
    for &single in &[true, false] {
        let (config, result) = replay(17, single);
        for outcome in &result.outcomes {
            if !outcome.ossp_applied {
                continue;
            }
            let payoffs = config.game.payoffs.get(outcome.type_id);
            let sse_attacker = payoffs.attacker_expected(outcome.coverage_ossp).max(0.0);
            assert!(
                (outcome.ossp_attacker_utility - sse_attacker).abs() < 1e-7,
                "alert {}: OSSP attacker {} vs SSE attacker {}",
                outcome.index,
                outcome.ossp_attacker_utility,
                sse_attacker
            );
        }
    }
}

/// The theorem checkers themselves agree with the engine-level observations.
#[test]
fn theorem_checkers_pass_on_paper_payoffs() {
    let table = PayoffTable::paper_table2();
    for payoffs in table.all() {
        assert_eq!(theorems::violations_over_theta_grid(payoffs, 200), 0);
    }
}
