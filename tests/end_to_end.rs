//! Cross-crate integration tests: the full pipeline from synthetic world
//! generation through the rule engine, forecasting and the audit-game engine,
//! exercised exactly through the facade crate's public API.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sag::prelude::*;
use sag::sim::access::{AccessConfig, AccessGenerator};
use sag::sim::population::{Population, PopulationConfig};
use sag::sim::rules::RuleEngine;

/// Full pipeline: population -> accesses -> rule engine -> audit engine.
#[test]
fn emr_pipeline_produces_consistent_audit_decisions() {
    let mut rng = StdRng::seed_from_u64(31);
    let population = Population::generate(&PopulationConfig::tiny(), &mut rng);
    let generator = AccessGenerator::new(AccessConfig::tiny());
    let rule_engine = RuleEngine::new(AlertCatalog::paper_table1());

    let mut history = Vec::new();
    for day in 0..8 {
        let accesses = generator.generate_day(&population, day, &mut rng);
        history.push(DayLog::new(
            day,
            rule_engine.evaluate_day(&population, &accesses),
        ));
    }
    let accesses = generator.generate_day(&population, 8, &mut rng);
    let test_day = DayLog::new(8, rule_engine.evaluate_day(&population, &accesses));

    let mut config = EngineConfig::paper_multi_type();
    config.game.budget = 5.0;
    let engine = AuditCycleEngine::new(config).unwrap();
    let result = engine.run_day(&history, &test_day).unwrap();

    assert_eq!(result.len(), test_day.len());
    for outcome in &result.outcomes {
        assert!(outcome.ossp_scheme.is_valid());
        assert!(outcome.ossp_utility >= outcome.online_sse_utility - 1e-9);
        assert!((0.0..=1.0 + 1e-9).contains(&outcome.coverage_ossp));
        assert!(outcome.budget_after_ossp >= 0.0);
        assert!(outcome.budget_after_ossp <= engine.config().game.budget + 1e-9);
    }
}

/// The calibrated stream, forecaster and engine agree on type counts and the
/// engine's utility ordering matches the paper's qualitative claim.
#[test]
fn calibrated_stream_replay_matches_paper_shape() {
    let mut generator = StreamGenerator::new(StreamConfig::paper_multi_type(17));
    let history = generator.generate_days(20);
    let test_day = generator.generate_day(20);

    let engine = AuditCycleEngine::new(EngineConfig::paper_multi_type()).unwrap();
    let result = engine.run_day(&history, &test_day).unwrap();
    let summary = ExperimentSummary::from_cycles(std::slice::from_ref(&result));

    // Shape of the paper's Figure 3: OSSP >= online SSE >= offline SSE (on
    // average), and OSSP is strictly better than the no-signaling baselines.
    assert!((summary.fraction_ossp_not_worse - 1.0).abs() < 1e-12);
    assert!(summary.mean_ossp > summary.mean_online);
    assert!(summary.mean_online >= summary.mean_offline - 30.0);
    assert!(summary.mean_ossp > summary.mean_offline);
}

/// The forecaster consumed by the engine is fitted from the same logs the
/// stream generator produced; daily totals must line up with Table 1.
#[test]
fn forecaster_daily_totals_track_catalog_means() {
    let mut generator = StreamGenerator::new(StreamConfig::paper_multi_type(23));
    let history = generator.generate_days(41);
    let model = ArrivalModel::fit(&history, 7);
    let catalog = AlertCatalog::paper_table1();
    for info in catalog.types() {
        let estimated = model.expected_daily_total(info.id);
        let tolerance = 4.0 * info.daily_std / (history.len() as f64).sqrt() + 1.0;
        assert!(
            (estimated - info.daily_mean).abs() < tolerance,
            "type {}: estimated {estimated} vs Table 1 mean {}",
            info.id,
            info.daily_mean
        );
    }
}

/// Budgets are conserved: expected accounting never spends more than the
/// configured cycle budget across the whole day.
#[test]
fn budget_is_never_exceeded_over_a_day() {
    let mut generator = StreamGenerator::new(StreamConfig::paper_single_type(5));
    let history = generator.generate_days(15);
    let test_day = generator.generate_day(15);
    let engine = AuditCycleEngine::new(EngineConfig::paper_single_type()).unwrap();
    let result = engine.run_day(&history, &test_day).unwrap();

    let budget = engine.config().game.budget;
    let total_spent_ossp: f64 = result
        .outcomes
        .iter()
        .map(|o| o.ossp_scheme.expected_audit_cost())
        .sum();
    // The engine clamps the remaining budget at zero, so the total expected
    // consumption can exceed the budget only by at most one alert's worth.
    assert!(
        total_spent_ossp <= budget + 1.0,
        "spent {total_spent_ossp} vs budget {budget}"
    );
    let final_budget = result.outcomes.last().unwrap().budget_after_ossp;
    assert!((0.0..=budget).contains(&final_budget));
}

/// Deterministic replay: the same seeds produce byte-identical utility series.
#[test]
fn replays_are_deterministic() {
    let run = || {
        let mut generator = StreamGenerator::new(StreamConfig::paper_multi_type(77));
        let history = generator.generate_days(10);
        let test_day = generator.generate_day(10);
        let engine = AuditCycleEngine::new(EngineConfig::paper_multi_type()).unwrap();
        let result = engine.run_day(&history, &test_day).unwrap();
        UtilitySeries::from_cycle(&result)
    };
    let a = run();
    let b = run();
    assert_eq!(a.ossp, b.ossp);
    assert_eq!(a.online_sse, b.online_sse);
    assert_eq!(a.offline_sse, b.offline_sse);
    assert_eq!(a.times, b.times);
}

/// The facade's LP re-export is usable on its own.
#[test]
fn facade_exposes_the_lp_substrate() {
    let mut lp = LpProblem::new(LpObjective::Maximize);
    let x = lp.add_var("x", 0.0, 10.0);
    lp.set_objective(x, 1.0);
    lp.add_constraint(&[(x, 2.0)], Relation::Le, 10.0);
    let sol = lp.solve().unwrap();
    assert!((sol.value(x) - 5.0).abs() < 1e-9);
}
