//! Workspace-level property-based tests: invariants of the SAG pipeline under
//! randomly generated (but well-formed) games, budgets and forecasts.

use proptest::prelude::*;
use sag::prelude::*;

/// Strategy for a well-formed payoff structure (paper sign conventions).
fn payoffs_strategy() -> impl Strategy<Value = Payoffs> {
    (
        1.0f64..1000.0,
        1.0f64..3000.0,
        1.0f64..8000.0,
        1.0f64..1000.0,
    )
        .prop_map(|(dc, du, ac, au)| Payoffs::new(dc, -du, -ac, au))
}

/// Strategy for a whole game: 1–6 types, positive costs, nonnegative budget.
fn game_strategy() -> impl Strategy<Value = (PayoffTable, Vec<f64>, Vec<f64>, f64)> {
    (1usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(payoffs_strategy(), n),
            proptest::collection::vec(0.5f64..5.0, n),
            proptest::collection::vec(0.0f64..300.0, n),
            0.0f64..120.0,
        )
            .prop_map(|(payoffs, costs, estimates, budget)| {
                (PayoffTable::new(payoffs), costs, estimates, budget)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The online SSE always returns a coverage vector of probabilities that
    /// respects the budget, and its best-response constraint really holds.
    #[test]
    fn sse_solution_is_always_consistent((payoffs, costs, estimates, budget) in game_strategy()) {
        let solver = SseSolver::new();
        let input = SseInput {
            payoffs: &payoffs,
            audit_costs: &costs,
            future_estimates: &estimates,
            budget,
        };
        let sol = solver.solve(&input).expect("well-formed games always solve");
        // Probabilities.
        for &theta in &sol.coverage {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&theta), "coverage {theta}");
        }
        // Budget feasibility.
        let spent: f64 = sol.budget_split.iter().sum();
        prop_assert!(spent <= budget + 1e-6, "spent {spent} > budget {budget}");
        // Best-response property: no type gives the attacker strictly more
        // than the chosen one.
        let best = sol.attacker_utility;
        for (t, &theta) in sol.coverage.iter().enumerate() {
            let alt = payoffs.get(AlertTypeId(t as u16)).attacker_expected(theta);
            prop_assert!(best >= alt - 1e-6, "type {t} utility {alt} beats best {best}");
        }
    }

    /// The OSSP never hurts the auditor (Theorem 2), its scheme is a valid
    /// joint distribution with the required marginal (Theorem 1), and the
    /// attacker's utility matches the SSE when the Theorem 3 condition holds
    /// (Theorem 4).
    #[test]
    fn ossp_invariants_hold_for_random_games(
        payoffs in payoffs_strategy(),
        theta in 0.0f64..1.0,
    ) {
        let ossp = ossp_closed_form(&payoffs, theta);
        prop_assert!(ossp.scheme.is_valid());
        prop_assert!((ossp.scheme.audit_probability() - theta).abs() < 1e-7);

        if payoffs.satisfies_theorem3_condition() {
            // Theorem 3: no silent auditing.
            prop_assert!(ossp.scheme.p0.abs() < 1e-9);
            // Theorem 2 against the effective SSE value.
            let sse = if payoffs.attacker_expected(theta) < 0.0 {
                0.0
            } else {
                payoffs.auditor_expected(theta)
            };
            prop_assert!(ossp.auditor_utility >= sse - 1e-7);
            // Theorem 4.
            let sse_attacker = payoffs.attacker_expected(theta).max(0.0);
            prop_assert!((ossp.attacker_utility - sse_attacker).abs() < 1e-7);
        } else {
            // Outside the Theorem 3 condition the LP is the reference optimum
            // and must still dominate the no-signaling baseline.
            let lp = ossp_lp(&payoffs, theta).expect("LP solves");
            let sse = if payoffs.attacker_expected(theta) < 0.0 {
                0.0
            } else {
                payoffs.auditor_expected(theta)
            };
            prop_assert!(lp.auditor_utility >= sse - 1e-6);
        }
    }

    /// The LP formulation of the OSSP never does better than... and never
    /// worse than the closed form when the closed form applies: they are the
    /// same optimum.
    #[test]
    fn ossp_lp_matches_closed_form_when_condition_holds(
        payoffs in payoffs_strategy().prop_filter(
            "Theorem 3 condition",
            Payoffs::satisfies_theorem3_condition,
        ),
        theta in 0.0f64..1.0,
    ) {
        let cf = ossp_closed_form(&payoffs, theta);
        let lp = ossp_lp(&payoffs, theta).expect("LP solves");
        prop_assert!((cf.auditor_utility - lp.auditor_utility).abs() < 1e-5,
            "closed form {} vs LP {}", cf.auditor_utility, lp.auditor_utility);
    }

    /// Offline SSE utility is monotone in budget.
    #[test]
    fn offline_sse_is_monotone_in_budget(
        (payoffs, costs, estimates, budget) in game_strategy(),
        extra in 1.0f64..50.0,
    ) {
        let low = OfflineSse::solve(&payoffs, &costs, &estimates, budget).unwrap();
        let high = OfflineSse::solve(&payoffs, &costs, &estimates, budget + extra).unwrap();
        prop_assert!(high.auditor_utility() >= low.auditor_utility() - 1e-6);
        prop_assert!(high.attacker_utility() <= low.attacker_utility() + 1e-6);
    }

    /// A signaling scheme sampled from the OSSP conserves probability between
    /// its conditional and marginal forms.
    #[test]
    fn scheme_conditionals_recompose_to_marginals(
        payoffs in payoffs_strategy(),
        theta in 0.0f64..1.0,
    ) {
        let scheme = ossp_closed_form(&payoffs, theta).scheme;
        let recomposed = scheme.warning_probability() * scheme.audit_given_warning()
            + (1.0 - scheme.warning_probability()) * scheme.audit_given_silent();
        prop_assert!((recomposed - scheme.audit_probability()).abs() < 1e-7);
    }
}
