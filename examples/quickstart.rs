//! Quickstart: solve the Signaling Audit Game for a single incoming alert.
//!
//! The scenario: a hospital auditing system with the paper's seven alert
//! types (Table 1/2) has 42 units of audit budget left for today. An alert of
//! type 3 (*Neighbor*) has just been triggered at 10:30. Should the system pop
//! up a warning, and with what probability will the access be audited?
//!
//! Run with: `cargo run --release --example quickstart`

use sag::prelude::*;

fn main() {
    // 1. The game: alert catalogue, payoffs and audit costs from the paper.
    let game = GameConfig::paper_multi_type();

    // 2. What the auditor knows right now: the remaining budget and an
    //    estimate of how many more alerts of each type will arrive today
    //    (normally fitted from historical logs via `ArrivalModel`; hard-coded
    //    here to keep the example self-contained).
    let remaining_budget = 42.0;
    let expected_future_alerts = vec![150.0, 22.0, 110.0, 8.0, 19.0, 11.0, 33.0];

    // 3. Online SSE (the paper's LP (2)): the budget-aware marginal audit
    //    probabilities for every type.
    let sse = SseSolver::new()
        .solve(&SseInput {
            payoffs: &game.payoffs,
            audit_costs: &game.audit_costs,
            future_estimates: &expected_future_alerts,
            budget: remaining_budget,
        })
        .expect("the paper's game always has an equilibrium");

    println!("Online SSE at this point of the day");
    println!("  attacker's best-response type : {}", sse.best_response);
    println!(
        "  auditor expected utility      : {:8.2}",
        sse.auditor_utility
    );
    println!(
        "  attacker expected utility     : {:8.2}",
        sse.attacker_utility
    );
    for (i, theta) in sse.coverage.iter().enumerate() {
        println!("  coverage of type {:<2}           : {:6.3}", i + 1, theta);
    }

    // 4. The triggered alert is of type 3 (index 2). The OSSP (LP (3)) turns
    //    the SSE coverage of that type into a warning/auditing scheme.
    let triggered = AlertTypeId(2);
    let theta = sse.coverage_of(triggered);
    let ossp = ossp_closed_form(game.payoffs.get(triggered), theta);

    println!(
        "\nOSSP for the triggered {} alert (theta = {:.3})",
        triggered, theta
    );
    println!("  P(warn, audit)      p1 = {:.3}", ossp.scheme.p1);
    println!("  P(warn, no audit)   q1 = {:.3}", ossp.scheme.q1);
    println!("  P(silent, audit)    p0 = {:.3}", ossp.scheme.p0);
    println!("  P(silent, no audit) q0 = {:.3}", ossp.scheme.q0);
    println!(
        "  warning probability    = {:.3}",
        ossp.scheme.warning_probability()
    );
    println!(
        "  audit prob. given warn = {:.3}",
        ossp.scheme.audit_given_warning()
    );
    println!("  attack deterred        : {}", ossp.deterred);

    // 5. The value of signaling: compare the auditor's expected utility with
    //    and without the warning mechanism (Theorem 2 says it never hurts).
    let without_signaling = game.payoffs.get(triggered).auditor_expected(theta);
    println!("\nAuditor expected utility for this alert");
    println!("  with signaling (OSSP)    : {:8.2}", ossp.auditor_utility);
    println!("  without signaling (SSE)  : {:8.2}", without_signaling);
    println!(
        "  gain from signaling      : {:8.2}",
        ossp.auditor_utility - without_signaling
    );
}
