//! Warnings that survive a crash: kill the audit service mid-day, recover
//! from its write-ahead log, and finish with bitwise-identical results.
//!
//! A warning is a *commitment* — the paper's signaling schemes only deter
//! because the attacker believes the auditor will follow through. A service
//! that forgets its half-finished day on a crash breaks that commitment:
//! budget already spent on warnings evaporates, and the replacement process
//! re-decides alerts it already answered. The durable `AuditService` closes
//! the gap by logging every mutation to a per-tenant, checksummed WAL
//! *before* acknowledging it, so a restart replays the day back to the
//! exact committed state.
//!
//! This example stages the full lifecycle against a real directory:
//!
//! 1. run an uninterrupted day as the ground truth;
//! 2. run the same day durably and kill the process mid-day;
//! 3. hand-tear the WAL tail, as a power loss mid-write would;
//! 4. recover with `ServiceBuilder::recover_from`, resume, finish — and
//!    assert the utilities match the uninterrupted run exactly.
//!
//! Run with: `cargo run --release --example robust_warnings`

use sag::prelude::*;

/// Zero the wall-clock timing field so two runs can be compared exactly.
fn untimed(mut cycle: CycleResult) -> CycleResult {
    for o in &mut cycle.outcomes {
        o.solve_micros = 0;
    }
    cycle
}

fn builder(history: Vec<sag::sim::DayLog>) -> ServiceBuilder {
    AuditService::builder().workers(0).tenant_with_history(
        "county-hospital",
        EngineBuilder::paper_multi_type(),
        history,
    )
}

fn main() -> sag::Result<()> {
    // The WAL lives in a real directory under target/ so a rerun starts
    // clean but the bytes are inspectable after a run.
    let wal_dir = std::path::Path::new("target").join("robust_warnings_wal");
    let _ = std::fs::remove_dir_all(&wal_dir);

    let mut generator = StreamGenerator::new(StreamConfig::paper_multi_type(41));
    let (history, mut test_days) = generator.generate_split(8, 1);
    let day = test_days.remove(0);
    let hospital = TenantId::from("county-hospital");

    // 1. Ground truth: the same day with no crash and no WAL.
    let control_service = builder(history.clone()).build()?;
    let control = untimed(control_service.open_day(&hospital, None)?.drive(&day)?);
    println!(
        "uninterrupted day: {} alerts, mean OSSP utility {:.2}",
        control.len(),
        control.mean_ossp_utility().unwrap_or(0.0)
    );

    // 2. The durable run: every OpenDay/PushAlert is on disk before it is
    //    acknowledged. We push just over half the day, then the "process"
    //    dies — here, the service is dropped on the floor.
    let kill_at = day.len() / 2 + 1;
    let session;
    {
        let mut service = builder(history.clone()).durable(&wal_dir).build()?;
        let Response::DayOpened { session: id, .. } = service.handle(Request::OpenDay {
            tenant: hospital.clone(),
            budget: None,
            day: Some(day.day()),
        })?
        else {
            unreachable!()
        };
        session = id;
        for alert in &day.alerts()[..kill_at] {
            service.handle(Request::PushAlert {
                session,
                alert: *alert,
            })?;
        }
        println!(
            "durable run killed after alert {kill_at}/{} on {session}",
            day.len()
        );
        // <-- power loss. Everything in memory is gone.
    }

    // 3. Worse: the crash landed mid-write, leaving half a frame at the
    //    tail of the log. Recovery discards a torn final record — it was
    //    never acknowledged, so nobody is owed it.
    let wal_file = wal_dir.join("county-hospital.wal");
    let mut bytes = std::fs::read(&wal_file).expect("wal file exists");
    let intact = bytes.len();
    bytes.extend_from_slice(&[0x2a; 11]);
    std::fs::write(&wal_file, &bytes).expect("wal file writable");
    println!("tore the WAL tail: {intact} intact bytes + 11 garbage bytes appended");

    // 4. The restarted deployment makes one call. The torn tail is
    //    dropped, the day is rebuilt to the exact committed state, and the
    //    session id survives.
    let mut recovered = builder(history).recover_from(&wal_dir)?;
    let handle = recovered
        .session(session)
        .expect("mid-day session recovered");
    let done = handle.alerts_processed();
    println!(
        "recovered {session}: {done} alerts already committed, budgets ({:.2}, {:.2})",
        handle.remaining_budget_ossp(),
        handle.remaining_budget_online()
    );
    assert_eq!(done, kill_at, "recovery must land on the committed state");

    // Resume the feed where the recovered session says it stopped.
    for alert in &day.alerts()[done..] {
        recovered.handle(Request::PushAlert {
            session,
            alert: *alert,
        })?;
    }
    let Response::DayClosed { result, .. } = recovered.handle(Request::FinishDay { session })?
    else {
        unreachable!()
    };
    let result = untimed(result);
    println!(
        "finished after recovery: {} alerts, mean OSSP utility {:.2}",
        result.len(),
        result.mean_ossp_utility().unwrap_or(0.0)
    );

    // The whole point: the crash is invisible in the results.
    assert_eq!(
        result, control,
        "recovered day must be bitwise identical to the uninterrupted day"
    );
    println!("crash + torn tail + recovery = bitwise-identical day ✓");
    Ok(())
}
