//! Hardening the warning policy against attackers who do not behave exactly
//! as the model assumes.
//!
//! The standard OSSP makes a warned attacker *exactly indifferent* between
//! proceeding and quitting. That is optimal against a perfectly rational
//! attacker, but brittle: an attacker who overestimates his gains by a few
//! percent — or who suffers from alert fatigue and clicks through warnings —
//! will proceed, and the auditor eats the loss. This example shows how to use
//! the robustness extension to trade a little nominal utility for a explicit
//! deterrence margin, and how the two policies compare as the fraction of
//! warning-ignoring attackers grows.
//!
//! Run with: `cargo run --release --example robust_warnings`

use sag::core::robust::{evaluate_against_oblivious, robust_ossp};
use sag::prelude::*;

fn main() {
    // Type 4 (Same Address) from the paper's Table 2, at a realistic
    // mid-morning coverage level.
    let payoffs = *PayoffTable::paper_table2().get(AlertTypeId(3));
    let theta = 0.20;

    let standard = ossp_closed_form(&payoffs, theta);
    println!("standard OSSP at theta = {theta}");
    println!(
        "  auditor expected utility (rational attacker): {:8.2}",
        standard.auditor_utility
    );
    println!(
        "  conditional utility a warned attacker sees    : {:8.2}",
        standard.scheme.audit_given_warning() * payoffs.attacker_covered
            + (1.0 - standard.scheme.audit_given_warning()) * payoffs.attacker_uncovered
    );

    // Demand a deterrence margin of 150 utility units: a warned attacker must
    // expect to LOSE at least 150 by proceeding.
    let margin = 150.0;
    let robust = robust_ossp(&payoffs, theta, margin);
    println!("\nmargin-robust OSSP (margin = {margin})");
    println!(
        "  auditor expected utility (rational attacker): {:8.2}",
        robust.auditor_utility
    );
    println!(
        "  achieved deterrence margin                   : {:8.2}",
        robust.achieved_margin
    );
    println!(
        "  margin feasible at this coverage             : {}",
        robust.margin_feasible
    );
    println!(
        "  cost of robustness (utility given up)        : {:8.2}",
        standard.auditor_utility - robust.auditor_utility
    );

    // How do the two commitments fare when a fraction rho of attackers
    // ignores the warning entirely?
    println!(
        "\n{:>6} {:>18} {:>18}",
        "rho", "standard scheme", "robust scheme"
    );
    for rho in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let (standard_utility, _) = evaluate_against_oblivious(&standard.scheme, &payoffs, rho);
        let (robust_utility, _) = evaluate_against_oblivious(&robust.scheme, &payoffs, rho);
        println!("{rho:>6.2} {standard_utility:>18.2} {robust_utility:>18.2}");
    }

    println!(
        "\nReading the table: at rho = 0 the standard scheme is (weakly) better — it is the\n\
         optimum of the perfectly-rational model. As rho grows, both schemes lose value, but\n\
         the robust scheme's stronger warning keeps more of the audit probability where the\n\
         ignoring attackers actually get caught."
    );
}
