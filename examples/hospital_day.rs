//! A full audit cycle at a hospital: the paper's headline experiment in
//! miniature.
//!
//! Generates 41 days of historical alert logs calibrated to the paper's
//! Table 1, then replays one test day through the online engine, comparing
//! the auditor's expected utility under the OSSP (with warnings), the online
//! SSE (no warnings) and the offline SSE (planned once per day).
//!
//! Run with: `cargo run --release --example hospital_day [seed]`

use sag::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2019);

    // Calibrated 7-type alert stream (Table 1 volumes, workday diurnal shape).
    let mut generator = StreamGenerator::new(StreamConfig::paper_multi_type(seed));
    let history = generator.generate_days(41);
    let test_day = generator.generate_day(41);
    println!(
        "history: {} days, {} alerts; test day: {} alerts",
        history.len(),
        history.iter().map(DayLog::len).sum::<usize>(),
        test_day.len()
    );

    // The paper's multi-type game: 7 types, unit audit costs, budget 50.
    let engine = EngineBuilder::paper_multi_type()
        .build()
        .expect("paper configuration is valid");
    let result = engine
        .run_day(&history, &test_day)
        .expect("replay succeeds");

    // Hourly averages of the three per-alert utility series.
    println!(
        "\n{:<8} {:>8} {:>12} {:>12} {:>12}",
        "hour", "alerts", "OSSP", "online SSE", "offline SSE"
    );
    for hour in 0..24u32 {
        let in_hour: Vec<&AlertOutcome> = result
            .outcomes
            .iter()
            .filter(|o| o.time.hour() == hour)
            .collect();
        if in_hour.is_empty() {
            continue;
        }
        let mean = |f: &dyn Fn(&AlertOutcome) -> f64| {
            in_hour.iter().map(|o| f(o)).sum::<f64>() / in_hour.len() as f64
        };
        println!(
            "{:02}:00    {:>8} {:>12.1} {:>12.1} {:>12.1}",
            hour,
            in_hour.len(),
            mean(&|o| o.ossp_utility),
            mean(&|o| o.online_sse_utility),
            mean(&|o| o.offline_sse_utility),
        );
    }

    let summary = ExperimentSummary::from_cycles(std::slice::from_ref(&result));
    println!("\nday summary");
    println!("  mean utility, OSSP        : {:8.2}", summary.mean_ossp);
    println!("  mean utility, online SSE  : {:8.2}", summary.mean_online);
    println!("  mean utility, offline SSE : {:8.2}", summary.mean_offline);
    println!(
        "  OSSP >= online SSE        : {:.1}% of alerts",
        summary.fraction_ossp_not_worse * 100.0
    );
    println!(
        "  attacks fully deterred    : {:.1}% of alerts",
        summary.fraction_deterred * 100.0
    );
    println!(
        "  mean optimization time    : {:.0} microseconds/alert",
        summary.mean_solve_micros
    );
}
