//! Using the library outside the healthcare setting: a payment-fraud audit
//! desk with three custom alert types, heterogeneous audit costs and a Monte
//! Carlo check of what a strategic attacker would actually experience.
//!
//! The replay uses the *streaming* session API — `open_day` once, then one
//! `push_alert` per arriving alert — which is the shape of a production
//! ingest loop: every warning decision is committed before the next alert is
//! seen.
//!
//! Run with: `cargo run --release --example custom_deployment`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sag::core::attacker::{simulate_attack, AttackerModel};
use sag::prelude::*;
use sag::sim::alert::{AlertTypeInfo, BaseRule, RuleSet};

fn main() {
    // 1. Define a custom deployment: three fraud-alert types with their own
    //    payoff structures, daily volumes and audit costs (hours of analyst
    //    time). The signs must follow the model: the auditor gains by catching
    //    and loses by missing; the attacker gains only when unaudited.
    let catalog = AlertCatalog::new(vec![
        AlertTypeInfo {
            id: AlertTypeId(0),
            description: "Card-not-present spike".to_string(),
            rules: RuleSet::from_rules(&[BaseRule::SameLastName]),
            daily_mean: 80.0,
            daily_std: 12.0,
        },
        AlertTypeInfo {
            id: AlertTypeId(1),
            description: "Dormant account reactivation".to_string(),
            rules: RuleSet::from_rules(&[BaseRule::SameAddress]),
            daily_mean: 25.0,
            daily_std: 6.0,
        },
        AlertTypeInfo {
            id: AlertTypeId(2),
            description: "Insider limit override".to_string(),
            rules: RuleSet::from_rules(&[BaseRule::DepartmentCoworker]),
            daily_mean: 6.0,
            daily_std: 2.0,
        },
    ]);
    let payoffs = PayoffTable::new(vec![
        Payoffs::new(50.0, -300.0, -1500.0, 250.0),
        Payoffs::new(120.0, -700.0, -2500.0, 500.0),
        Payoffs::new(400.0, -2500.0, -9000.0, 1200.0),
    ]);
    let game = GameConfig {
        catalog: catalog.clone(),
        payoffs,
        audit_costs: vec![0.5, 1.0, 3.0],
        budget: 18.0,
    };

    // 2. Generate a synthetic history with the custom volumes and fit the
    //    forecaster the engine will use.
    let stream = StreamConfig::stationary(catalog, DiurnalProfile::standard_hco(), 99);
    let mut generator = StreamGenerator::new(stream);
    let history = generator.generate_days(30);
    let test_day = generator.generate_day(30);

    // 3. Stream the day through a session, alert by alert — exactly what a
    //    live deployment's ingest loop does. Each push returns the committed
    //    decision for that alert (the scheme to sample the warning from and
    //    the expected utility), and the first few are printed as they land.
    // The builder validates the whole configuration (game signs, costs,
    // budget, knobs) up front — a malformed game fails here with a
    // structured ConfigError naming the cause.
    let engine = EngineBuilder::new(game)
        .build()
        .expect("valid configuration");
    let mut session = engine
        .open_day(&history, None)
        .expect("session opens on a valid configuration");
    println!("live decisions as the first alerts arrive:");
    for alert in test_day.alerts() {
        let outcome = session.push_alert(alert).expect("alert processes");
        if outcome.index < 5 {
            println!(
                "  {} type {} -> warn w.p. {:.3}, audit w.p. {:.3}, budget left {:.2}",
                outcome.time,
                outcome.type_id,
                outcome.ossp_scheme.warning_probability(),
                outcome.coverage_ossp,
                session.remaining_budget_ossp()
            );
        }
    }
    let result = session.finish();
    let summary = ExperimentSummary::from_cycles(std::slice::from_ref(&result));

    println!("\nfraud desk, {} alerts on the test day", result.len());
    println!("  mean utility, OSSP        : {:8.2}", summary.mean_ossp);
    println!("  mean utility, online SSE  : {:8.2}", summary.mean_online);
    println!("  mean utility, offline SSE : {:8.2}", summary.mean_offline);
    println!(
        "  attacks fully deterred    : {:.1}% of alerts",
        summary.fraction_deterred * 100.0
    );

    // 4. What would a rational attacker striking at 14:00 actually do, and
    //    how would repeated attacks play out against the committed scheme?
    let midday = result
        .outcomes
        .iter()
        .find(|o| o.time.hour() >= 14)
        .expect("afternoon alert exists");
    let attacker = AttackerModel::rational_at(midday.time);
    // Simplified view: expose the same marginal coverage for every type (the
    // engine state at that moment); a production deployment would publish the
    // full per-type coverage vector of the online SSE.
    let coverage = vec![midday.coverage_ossp; 3];
    match attacker.choose_type(&engine.config().game.payoffs, &coverage) {
        None => println!(
            "\nA rational attacker at {} would not attack at all.",
            midday.time
        ),
        Some(target) => {
            println!(
                "\nA rational attacker at {} would target type {}.",
                midday.time, target
            );
            let payoffs = engine.config().game.payoffs.get(target);
            let scheme = &midday.ossp_scheme;
            let mut rng = StdRng::seed_from_u64(1);
            let trials = 10_000;
            let mut warned = 0usize;
            let mut proceeded = 0usize;
            let mut caught = 0usize;
            for _ in 0..trials {
                let outcome = simulate_attack(scheme, payoffs, &mut rng);
                warned += usize::from(outcome.warned);
                proceeded += usize::from(outcome.proceeded);
                caught += usize::from(outcome.audited);
            }
            println!("  over {trials} simulated attempts against the committed scheme:");
            println!(
                "    warned    : {:.1}%",
                100.0 * warned as f64 / trials as f64
            );
            println!(
                "    proceeded : {:.1}%",
                100.0 * proceeded as f64 / trials as f64
            );
            println!(
                "    audited   : {:.1}%",
                100.0 * caught as f64 / trials as f64
            );
        }
    }
}
