//! The multi-tenant front door: one `AuditService` auditing two very
//! different tenants at once.
//!
//! A regional hospital runs the paper's 7-type EMR game; a payment-fraud
//! desk runs a custom 3-type game with its own payoffs, costs and budget.
//! The service owns an engine and a rolling alert history per tenant, and a
//! single driver loop multiplexes both tenants' audit cycles through the
//! typed `Request`/`Response` API — then the same day is replayed through
//! owned `SessionHandle`s driven on worker threads, which lands on
//! bitwise-identical results.
//!
//! Run with: `cargo run --release --example audit_service`

use sag::prelude::*;
use sag::sim::alert::{AlertTypeInfo, BaseRule, RuleSet};

fn main() -> sag::Result<()> {
    // 1. Tenant one: the paper's hospital, on recorded history.
    let mut generator = StreamGenerator::new(StreamConfig::paper_multi_type(2026));
    let hospital_history = generator.generate_days(10);
    let hospital_day = generator.generate_day(10);

    // 2. Tenant two: a fraud desk with three custom alert types.
    let catalog = AlertCatalog::new(vec![
        AlertTypeInfo {
            id: AlertTypeId(0),
            description: "Card-not-present spike".to_string(),
            rules: RuleSet::from_rules(&[BaseRule::SameLastName]),
            daily_mean: 80.0,
            daily_std: 12.0,
        },
        AlertTypeInfo {
            id: AlertTypeId(1),
            description: "Dormant account reactivation".to_string(),
            rules: RuleSet::from_rules(&[BaseRule::SameAddress]),
            daily_mean: 25.0,
            daily_std: 6.0,
        },
        AlertTypeInfo {
            id: AlertTypeId(2),
            description: "Insider limit override".to_string(),
            rules: RuleSet::from_rules(&[BaseRule::DepartmentCoworker]),
            daily_mean: 6.0,
            daily_std: 2.0,
        },
    ]);
    let fraud_game = GameConfig {
        catalog: catalog.clone(),
        payoffs: PayoffTable::new(vec![
            Payoffs::new(50.0, -300.0, -1500.0, 250.0),
            Payoffs::new(120.0, -700.0, -2500.0, 500.0),
            Payoffs::new(400.0, -2500.0, -9000.0, 1200.0),
        ]),
        audit_costs: vec![0.5, 1.0, 3.0],
        budget: 18.0,
    };
    let mut generator = StreamGenerator::new(StreamConfig::stationary(
        catalog,
        DiurnalProfile::standard_hco(),
        99,
    ));
    let fraud_history = generator.generate_days(10);
    let fraud_day = generator.generate_day(10);

    // 3. One service, two tenants. Every configuration is validated here,
    //    at the front door — a bad knob would fail this build() with a
    //    structured ConfigError, not a panic deep inside a replay.
    let mut service = AuditService::builder()
        .tenant_with_history(
            "regional-hospital",
            EngineBuilder::paper_multi_type(),
            hospital_history.clone(),
        )
        .tenant_with_history(
            "fraud-desk",
            EngineBuilder::new(fraud_game).forecast_decay(0.9),
            fraud_history.clone(),
        )
        .build()?;
    println!(
        "service up: {} tenants, {} pool worker(s)",
        service.num_tenants(),
        service.workers()
    );

    // 4. The driver loop: open a cycle per tenant, interleave both feeds
    //    through the command API, close both cycles.
    let mut sessions = Vec::new();
    for tenant in ["regional-hospital", "fraud-desk"] {
        let response = service.handle(Request::OpenDay {
            tenant: TenantId::from(tenant),
            budget: None,
            day: None,
        })?;
        if let Response::DayOpened { session, tenant } = response {
            println!("opened {session} for {tenant}");
            sessions.push(session);
        }
    }
    let mut feeds = [hospital_day.alerts().iter(), fraud_day.alerts().iter()];
    let mut decisions = [0usize; 2];
    let mut warnings = [0usize; 2];
    loop {
        let mut progressed = false;
        for (t, feed) in feeds.iter_mut().enumerate() {
            if let Some(alert) = feed.next() {
                let response = service.handle(Request::PushAlert {
                    session: sessions[t],
                    alert: *alert,
                })?;
                if let Response::Decision { outcome, .. } = response {
                    decisions[t] += 1;
                    if outcome.ossp_scheme.warning_probability() > 0.5 {
                        warnings[t] += 1;
                    }
                }
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    println!("\nper-tenant cycles, multiplexed through one loop:");
    for (t, session) in sessions.iter().enumerate() {
        let response = service.handle(Request::FinishDay { session: *session })?;
        if let Response::DayClosed { tenant, result, .. } = response {
            println!(
                "  {tenant:<18} {:>5} alerts, {:>5.1}% warned, mean OSSP utility {:>8.2}",
                decisions[t],
                100.0 * warnings[t] as f64 / decisions[t].max(1) as f64,
                result.mean_ossp_utility().unwrap_or(0.0)
            );
        }
    }

    // 5. The same days as owned handles driven on threads: a SessionHandle
    //    has no lifetime, so it moves wholesale onto whatever thread serves
    //    that tenant's feed. Results are bitwise identical to the loop
    //    above (modulo wall-clock timing fields).
    let hospital_id = TenantId::from("regional-hospital");
    let fraud_id = TenantId::from("fraud-desk");
    let hospital_handle = service.open_day(&hospital_id, None)?;
    let fraud_handle = service.open_day(&fraud_id, None)?;
    let (hospital_result, fraud_result) = std::thread::scope(|scope| {
        let hospital = scope.spawn(|| hospital_handle.drive(&hospital_day));
        let fraud = scope.spawn(|| fraud_handle.drive(&fraud_day));
        (hospital.join().unwrap(), fraud.join().unwrap())
    });
    println!("\nsame days on owned handles across threads:");
    for (tenant, result) in [
        ("regional-hospital", hospital_result?),
        ("fraud-desk", fraud_result?),
    ] {
        println!(
            "  {tenant:<18} {:>5} alerts, mean OSSP utility {:>8.2}",
            result.len(),
            result.mean_ossp_utility().unwrap_or(0.0)
        );
    }

    // 6. Batch what-if: both tenants' recorded days fanned out over the
    //    service pool in one call.
    let jobs = [
        ServiceJob::new(&hospital_id, &hospital_day),
        ServiceJob::new(&fraud_id, &fraud_day),
    ];
    let results = service.replay_concurrent(&jobs)?;
    println!(
        "\nreplay_concurrent over the pool: {} cycles, {} total alerts",
        results.len(),
        results.iter().map(CycleResult::len).sum::<usize>()
    );
    Ok(())
}
