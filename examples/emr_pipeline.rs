//! End-to-end EMR pipeline: from raw access events to audit decisions.
//!
//! This example exercises the *full* substrate rather than the calibrated
//! alert stream: it builds a synthetic hospital population, generates raw
//! `⟨employee, patient, time⟩` access events with a workday diurnal profile,
//! runs the breach-detection rule engine (same last name, department
//! co-worker, neighbor, same address and their combinations), and finally
//! replays the resulting typed alert stream through the Signaling Audit Game.
//!
//! Run with: `cargo run --release --example emr_pipeline [seed]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sag::prelude::*;
use sag::sim::access::{AccessConfig, AccessGenerator};
use sag::sim::population::{Population, PopulationConfig};
use sag::sim::rules::RuleEngine;
use sag::sim::stream::count_by_type;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. A synthetic hospital world: employees, patients, names, addresses.
    let population = Population::generate(&PopulationConfig::default(), &mut rng);
    println!(
        "population: {} employees, {} patients ({} are both)",
        population.employees().len(),
        population.patients().len(),
        population
            .employees()
            .iter()
            .filter(|e| population.patients().contains(e))
            .count()
    );

    // 2. Raw access events for a training window and one test day.
    let generator = AccessGenerator::new(AccessConfig::default());
    let engine = RuleEngine::new(AlertCatalog::paper_table1());
    let training_days = 10u32;

    let mut history: Vec<DayLog> = Vec::new();
    for day in 0..training_days {
        let accesses = generator.generate_day(&population, day, &mut rng);
        let alerts = engine.evaluate_day(&population, &accesses);
        history.push(DayLog::new(day, alerts));
    }
    let test_accesses = generator.generate_day(&population, training_days, &mut rng);
    let test_alerts = engine.evaluate_day(&population, &test_accesses);
    let test_day = DayLog::new(training_days, test_alerts);

    println!(
        "rule engine: {} accesses on the test day -> {} alerts ({:.2}% alert rate)",
        test_accesses.len(),
        test_day.len(),
        100.0 * test_day.len() as f64 / test_accesses.len().max(1) as f64
    );
    let counts = count_by_type(test_day.alerts(), 7);
    for (i, info) in AlertCatalog::paper_table1().types().iter().enumerate() {
        println!(
            "  type {:<2} {:<52} {:>5}",
            i + 1,
            info.description,
            counts[i]
        );
    }

    // 3. Run the audit game over the rule engine's alerts. The alert volumes
    //    of this small world differ from the paper's hospital, so scale the
    //    budget to roughly the same coverage ratio (budget ~ 10% of alerts).
    let audit_engine = EngineBuilder::paper_multi_type()
        .budget((test_day.len() as f64 * 0.10).max(5.0))
        .build()
        .expect("valid configuration");
    let result = audit_engine
        .run_day(&history, &test_day)
        .expect("replay succeeds");

    let summary = ExperimentSummary::from_cycles(std::slice::from_ref(&result));
    println!(
        "\naudit game over the detected alerts (budget {:.0})",
        audit_engine.config().game.budget
    );
    println!("  mean utility, OSSP        : {:8.2}", summary.mean_ossp);
    println!("  mean utility, online SSE  : {:8.2}", summary.mean_online);
    println!("  mean utility, offline SSE : {:8.2}", summary.mean_offline);
    println!(
        "  OSSP >= online SSE        : {:.1}% of alerts",
        summary.fraction_ossp_not_worse * 100.0
    );
}
