#!/usr/bin/env python3
"""Perf-smoke floor checks for the CI pipeline.

Compares a freshly measured BENCH_1.json (per-alert solve-chain throughput)
against the committed baseline and sanity-checks BENCH_2.json (the scenario
registry replay, the service front door, durability, and the network load
run). Floors are deliberately generous — CI runners are noisy — so only
real regressions (a lost warm-start path, an accidentally quadratic replay)
trip them.

The checks are grouped into named sections selectable with `--sections`
(comma-separated), so each CI job gates exactly the reports it produced:
the perf-smoke job runs everything, the network-smoke job runs only
`service_network`. Every section is isolated: a malformed or truncated
report fails its own section's checks and the run still prints every other
section's verdicts, so one broken file can never mask the rest of the
report. Exit status is non-zero on any violation; every check prints
PASS/FAIL so the workflow log reads as a report.
"""

import argparse
import json
import sys

SECTIONS = (
    "bench1",
    "lp_kernel",
    "scenarios",
    "service_concurrent",
    "durability",
    "sharding",
    "cluster",
    "service_network",
    "service_chaos",
)

failures = []


def check(label, ok, detail):
    status = "PASS" if ok else "FAIL"
    print(f"[{status}] {label}: {detail}")
    if not ok:
        failures.append(label)


def load_json(path, label):
    """Load a report, charging unreadability to `label` instead of dying."""
    if not path:
        return None
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        check(f"{label}.readable", False, f"{path}: {e}")
        return None


def check_bench1(baseline, fresh, floor):
    """BENCH_1: solve-chain throughput, streaming latency, pruning."""
    floor_aps = baseline["alerts_per_sec"] * floor
    check(
        "throughput.alerts_per_sec",
        fresh["alerts_per_sec"] >= floor_aps,
        f'{fresh["alerts_per_sec"]:.0f} alerts/sec (floor {floor_aps:.0f}, '
        f'baseline {baseline["alerts_per_sec"]:.0f})',
    )
    floor_hit = baseline["warm_start_hit_rate"] * floor
    check(
        "throughput.warm_start_hit_rate",
        fresh["warm_start_hit_rate"] >= floor_hit,
        f'{fresh["warm_start_hit_rate"]:.4f} (floor {floor_hit:.4f})',
    )
    check(
        "throughput.warm_speedup_5type",
        fresh["warm_vs_cold_5type"]["speedup"] >= 1.0,
        f'{fresh["warm_vs_cold_5type"]["speedup"]:.2f}x warm-vs-cold',
    )

    # The streaming block must exist with sane percentiles (a missing or
    # zeroed block means the session ingest path silently stopped being
    # measured), its throughput is floored like the bulk replay, and its p99
    # is ceilinged against the committed baseline: latency is
    # lower-is-better, so the fresh run may be at most 1/floor (4x at the
    # default 0.25) of the baseline p99.
    streaming = fresh.get("streaming")
    streaming_ok = isinstance(streaming, dict) and isinstance(
        streaming.get("latency_micros"), dict)
    check(
        "streaming.present",
        streaming_ok,
        "BENCH_1 carries a streaming latency block",
    )
    if streaming_ok:
        lat = streaming["latency_micros"]
        check(
            "streaming.latency_sane",
            0.0 < lat["p50"] <= lat["p99"],
            f'p50 {lat["p50"]:.1f}us <= p99 {lat["p99"]:.1f}us',
        )
        floor_stream_aps = baseline["streaming"]["alerts_per_sec"] * floor
        check(
            "streaming.alerts_per_sec",
            streaming["alerts_per_sec"] >= floor_stream_aps,
            f'{streaming["alerts_per_sec"]:.0f} alerts/sec '
            f"(floor {floor_stream_aps:.0f})",
        )
        p99_ceiling = baseline["streaming"]["latency_micros"]["p99"] / floor
        check(
            "streaming.p99_micros",
            lat["p99"] <= p99_ceiling,
            f'{lat["p99"]:.1f}us (ceiling {p99_ceiling:.1f}us, baseline '
            f'{baseline["streaming"]["latency_micros"]["p99"]:.1f}us)',
        )

    # The pruning skip counters are deterministic (unlike wall-clock), so
    # they are gated tightly: the pruned arm must actually retire most
    # candidate LPs, and the exhaustive arm must still solve one LP per type
    # (proving the comparison measures what it claims). The wall-clock
    # speedup only needs to clear 1.0 loosely — a pruning layer that *slows
    # the solver down* is a regression even on a noisy runner.
    pruning = fresh.get("pruning")
    pruning_ok = isinstance(pruning, dict)
    check("pruning.present", pruning_ok, "BENCH_1 carries a pruning block")
    if pruning_ok:
        check(
            "pruning.pruned_lp_fraction",
            0.5 <= pruning["pruned_lp_fraction"] <= 1.0,
            f'{pruning["pruned_lp_fraction"]:.4f} of candidate LPs pruned',
        )
        check(
            "pruning.exhaustive_arm_is_exhaustive",
            pruning["lp_solves_per_solve_exhaustive"] > 6.0,
            f'{pruning["lp_solves_per_solve_exhaustive"]:.2f} LPs/solve '
            "(7-type game)",
        )
        check(
            "pruning.speedup",
            pruning["speedup"] >= 1.1,
            f'{pruning["speedup"]:.2f}x pruned vs exhaustive',
        )


def check_lp_kernel(baseline, fresh, floor):
    """BENCH_1: the blocked simplex kernel vs the frozen scalar reference,
    and the certified ε-approximate solve mode."""
    kernel = fresh.get("lp_kernel")
    kernel_ok = isinstance(kernel, dict) and isinstance(
        kernel.get("sizes"), list)
    check(
        "lp_kernel.present",
        kernel_ok,
        "BENCH_1 carries an lp_kernel block",
    )
    if not kernel_ok:
        return
    sizes = {row["types"]: row for row in kernel["sizes"]}
    check(
        "lp_kernel.sizes",
        all(t in sizes for t in (28, 64, 128)),
        f"measured type counts: {sorted(sizes)}",
    )
    # The committed baseline carries the headline claim: the blocked kernel
    # beats the frozen reference by >= 1.5x on the 128-type candidate LPs
    # (same Bland pivot sequence, so the ratio is pure per-pivot
    # throughput). The fresh run only needs to clear a noise-scaled floor —
    # a same-machine ratio is robust, but CI runners still jitter.
    base_sizes = {
        row["types"]: row
        for row in baseline.get("lp_kernel", {}).get("sizes", [])}
    if 128 in base_sizes:
        check(
            "lp_kernel.speedup_128_baseline",
            base_sizes[128]["speedup"] >= 1.5,
            f'committed baseline claims {base_sizes[128]["speedup"]:.2f}x '
            "(floor 1.50)",
        )
    else:
        check(
            "lp_kernel.speedup_128_baseline",
            False,
            "no 128-type row in the committed baseline; regenerate "
            "BENCH_1.json to re-arm the gate",
        )
    if 128 in sizes:
        fresh_floor = max(1.1, 1.5 * floor)
        check(
            "lp_kernel.speedup_128",
            sizes[128]["speedup"] >= fresh_floor,
            f'{sizes[128]["speedup"]:.2f}x blocked vs reference '
            f"(floor {fresh_floor:.2f})",
        )
        check(
            "lp_kernel.pivots_128",
            sizes[128]["pivots_per_lp"] >= 10.0,
            f'{sizes[128]["pivots_per_lp"]:.1f} pivots/LP — the candidate '
            "programs do real simplex work",
        )
    # The ε-mode counters are deterministic; the certificate bound is a hard
    # engine guarantee (each skipped day certifies <= ε per solve), so both
    # are gated exactly rather than floored.
    eps = kernel.get("epsilon_mode")
    eps_ok = isinstance(eps, dict)
    check(
        "lp_kernel.epsilon_mode.present",
        eps_ok,
        "lp_kernel carries the ε-approximate mode leg",
    )
    if not eps_ok:
        return
    check(
        "lp_kernel.epsilon_mode.skips",
        eps["skipped_candidate_lps"] >= 1
        and 0.0 < eps["skip_fraction"] <= 1.0,
        f'{eps["skipped_candidate_lps"]} candidate LPs skipped '
        f'({eps["skip_fraction"]:.4f} of decisions) at '
        f'ε = {eps["epsilon"]:.1f}',
    )
    check(
        "lp_kernel.epsilon_mode.certificate",
        0.0 <= eps["worst_day_certified_loss"]
        and eps["total_certified_loss"]
        <= eps["epsilon"] * eps["solves"] + 1e-9,
        f'worst day {eps["worst_day_certified_loss"]:.4f}, total '
        f'{eps["total_certified_loss"]:.4f} over {eps["solves"]} solves '
        f'(bound ε × solves = {eps["epsilon"] * eps["solves"]:.1f})',
    )


def check_scenarios(scenarios, scenario_baseline, baseline, floor):
    """BENCH_2: every registered scenario replays at real throughput."""
    # The throughput floor here is deliberately absolute, not derived from
    # the 7-type BENCH_1 baseline: scenarios are free to be intrinsically
    # heavier (more types, bigger populations). The floor only catches
    # catastrophic regressions like an accidentally quadratic replay.
    scenario_floor_aps = 500.0
    # The warm-hit floor rides on the BENCH_1 baseline when it was loaded;
    # standalone runs of this section fall back to an absolute floor.
    if baseline is not None:
        floor_hit = baseline["warm_start_hit_rate"] * floor
    else:
        floor_hit = 0.2
    # The federated scenarios are what the incremental solve layer exists
    # for; their pruning skip rate is gated (deterministic) and — when a
    # committed BENCH_2 baseline is supplied — so is their throughput.
    federated = {"multi-site", "metro-grid"}
    baseline_rows = {}
    if scenario_baseline is not None:
        baseline_rows = {
            row["name"]: row for row in scenario_baseline["scenarios"]}
    rows = scenarios["scenarios"]
    check("scenarios.count", len(rows) >= 7, f"{len(rows)} scenarios")
    for row in rows:
        name = row["name"]
        check(
            f"scenario.{name}.alerts",
            row["alerts"] > 100,
            f'{row["alerts"]} alerts replayed',
        )
        check(
            f"scenario.{name}.alerts_per_sec",
            row["alerts_per_sec"] >= scenario_floor_aps,
            f'{row["alerts_per_sec"]:.0f} alerts/sec '
            f"(floor {scenario_floor_aps:.0f})",
        )
        check(
            f"scenario.{name}.warm_start_hit_rate",
            row["warm_start_hit_rate"] >= floor_hit,
            f'{row["warm_start_hit_rate"]:.4f} (floor {floor_hit:.4f})',
        )
        fraction = row.get("pruned_lp_fraction", 0.0)
        check(
            f"scenario.{name}.pruned_lp_fraction_sane",
            0.0 <= fraction < 1.0,
            f"{fraction:.4f} within [0, 1)",
        )
        if name in federated:
            check(
                f"scenario.{name}.pruned_lp_fraction",
                fraction >= 0.5,
                f"{fraction:.4f} of candidate LPs pruned (floor 0.5)",
            )
            if name in baseline_rows:
                scen_floor = baseline_rows[name]["alerts_per_sec"] * floor
                check(
                    f"scenario.{name}.alerts_per_sec_vs_baseline",
                    row["alerts_per_sec"] >= scen_floor,
                    f'{row["alerts_per_sec"]:.0f} alerts/sec (floor '
                    f"{scen_floor:.0f}, baseline "
                    f'{baseline_rows[name]["alerts_per_sec"]:.0f})',
                )
            elif scenario_baseline is not None:
                # A federated scenario with no committed baseline row would
                # silently disarm the throughput gate; fail loudly so a
                # stale/renamed BENCH_2 baseline can't mask a regression.
                check(
                    f"scenario.{name}.alerts_per_sec_vs_baseline",
                    False,
                    "scenario missing from the committed scenario baseline; "
                    "regenerate BENCH_2.json to re-arm the gate",
                )


def check_service_concurrent(scenarios, scenario_baseline, floor):
    """BENCH_2: multi-tenant AuditService throughput."""
    # The service front door multiplexes N tenants' owned sessions over a
    # worker pool; its concurrent throughput is floored both absolutely
    # (catastrophic-regression catch) and against the committed baseline
    # (same convention as the federated scenarios). The concurrent-vs-serial
    # speedup is only gated on hosts that can physically show one.
    scenario_floor_aps = 500.0
    service = scenarios.get("service_concurrent")
    service_ok = isinstance(service, dict)
    check(
        "service_concurrent.present",
        service_ok,
        "BENCH_2 carries a service_concurrent block",
    )
    if not service_ok:
        return
    check(
        "service_concurrent.alerts",
        service["alerts"] > 1000,
        f'{service["alerts"]} alerts served across '
        f'{service["tenants"]} tenants',
    )
    check(
        "service_concurrent.alerts_per_sec",
        service["alerts_per_sec"] >= scenario_floor_aps,
        f'{service["alerts_per_sec"]:.0f} alerts/sec '
        f"(absolute floor {scenario_floor_aps:.0f})",
    )
    if scenario_baseline is not None:
        service_base = scenario_baseline.get("service_concurrent")
        if service_base:
            service_floor = service_base["alerts_per_sec"] * floor
            check(
                "service_concurrent.alerts_per_sec_vs_baseline",
                service["alerts_per_sec"] >= service_floor,
                f'{service["alerts_per_sec"]:.0f} alerts/sec (floor '
                f"{service_floor:.0f}, baseline "
                f'{service_base["alerts_per_sec"]:.0f})',
            )
        else:
            # A missing committed section would silently disarm the gate;
            # fail loudly so a stale BENCH_2 baseline cannot mask a
            # front-door regression.
            check(
                "service_concurrent.alerts_per_sec_vs_baseline",
                False,
                "section missing from the committed scenario baseline; "
                "regenerate BENCH_2.json to re-arm the gate",
            )
    service_threads = service["threads_available"]
    if service_threads >= 4 and service["workers"] > 1:
        check(
            "service_concurrent.speedup_vs_serial",
            service["speedup_vs_serial"] > 1.3,
            f'{service["speedup_vs_serial"]:.2f}x over '
            f'{service["workers"]} workers '
            f"({service_threads} threads available)",
        )
    else:
        note = service.get("note", "")
        print(
            f"[SKIP] service_concurrent.speedup_vs_serial: only "
            f"{service_threads} thread(s) available, measured "
            f'{service["speedup_vs_serial"]:.2f}x'
            + (f" — {note}" if note else "")
        )


def check_durability(scenarios, scenario_baseline, floor):
    """BENCH_2: WAL cost and crash recovery."""
    # The durability section logs a 10k-alert day through the write-ahead
    # log (fsync on and off) and recovers it from the surviving bytes. The
    # bitwise-equality flag is a hard correctness gate: a recovered day that
    # diverges from the uninterrupted run is a bug regardless of runner
    # noise. Throughput floors are absolute like the scenario replays —
    # fsync-on gets a much lower floor because a barrier per record is
    # disk-bound, not CPU-bound, and CI disks vary wildly.
    scenario_floor_aps = 500.0
    durability = scenarios.get("durability")
    durability_ok = isinstance(durability, dict)
    check(
        "durability.present",
        durability_ok,
        "BENCH_2 carries a durability block",
    )
    if not durability_ok:
        return
    check(
        "durability.alerts",
        durability["alerts"] >= 10000,
        f'{durability["alerts"]} alerts logged and recovered',
    )
    check(
        "durability.recovered_bitwise_equal",
        durability.get("recovered_bitwise_equal") is True,
        "recovered day matches the uninterrupted run bitwise",
    )
    check(
        "durability.fsync_off_alerts_per_sec",
        durability["fsync_off_alerts_per_sec"] >= scenario_floor_aps,
        f'{durability["fsync_off_alerts_per_sec"]:.0f} alerts/sec '
        f"(floor {scenario_floor_aps:.0f})",
    )
    check(
        "durability.fsync_on_alerts_per_sec",
        durability["fsync_on_alerts_per_sec"] >= 25.0,
        f'{durability["fsync_on_alerts_per_sec"]:.0f} alerts/sec '
        "(floor 25, disk-bound)",
    )
    check(
        "durability.recovery_alerts_per_sec",
        durability["recovery_alerts_per_sec"] >= scenario_floor_aps,
        f'{durability["recovery_alerts_per_sec"]:.0f} alerts/sec '
        f'replayed in {durability["recovery_wall_seconds"]:.3f}s '
        f"(floor {scenario_floor_aps:.0f})",
    )
    if scenario_baseline is not None:
        durability_base = scenario_baseline.get("durability")
        if durability_base:
            recovery_floor = (
                durability_base["recovery_alerts_per_sec"] * floor)
            check(
                "durability.recovery_vs_baseline",
                durability["recovery_alerts_per_sec"] >= recovery_floor,
                f'{durability["recovery_alerts_per_sec"]:.0f} alerts/sec '
                f"(floor {recovery_floor:.0f}, baseline "
                f'{durability_base["recovery_alerts_per_sec"]:.0f})',
            )
        else:
            check(
                "durability.recovery_vs_baseline",
                False,
                "section missing from the committed scenario baseline; "
                "regenerate BENCH_2.json to re-arm the gate",
            )


def check_sharding(scenarios):
    """BENCH_2: sharded replay must actually scale on multi-core runners."""
    # The comparison is only meaningful when the binary was built with the
    # `parallel` feature (otherwise replay_sharded runs sequentially and the
    # "speedup" is pure timer noise) — the perf-smoke job always builds with
    # it, so a missing feature flag is a CI misconfiguration and fails hard.
    # On < 4 cores a speedup is physically impossible; BENCH_2 records the
    # honest ~1.0x plus a note, and the gate is skipped. A broken parallel
    # path on >= 4 cores measures ~1.0x; real sharding measures ~3x. The
    # gate sits at 1.3 (not the ~1.5+ the bench output shows on a quiet
    # 4-core host) because shared CI runners are noisy and each best-of-3
    # leg is only tens of milliseconds.
    sharding = scenarios["sharding"]
    threads = sharding["threads_available"]
    check(
        "sharding.parallel_feature",
        sharding.get("parallel_feature", False),
        "bench binary built with the `parallel` feature",
    )
    if threads >= 4:
        check(
            "sharding.speedup",
            sharding["speedup"] > 1.3,
            f'{sharding["speedup"]:.2f}x over {sharding["shards"]} shards '
            f"({threads} threads available)",
        )
    else:
        note = sharding.get("note", "")
        print(
            f"[SKIP] sharding.speedup: only {threads} thread(s) available, "
            f'measured {sharding["speedup"]:.2f}x'
            + (f" — {note}" if note else "")
        )


def check_cluster(scenarios):
    """BENCH_2: the consistent-hash cluster's multi-core scaling curves."""
    # Two curves per shard count (1/2/4/8, capped at the tenant count): the
    # engine's sharded batch replay, and the sag-cluster deployment shape —
    # N independent AuditService shards each driven by its own OS thread.
    # `results_identical` is a hard correctness gate: a shard count that
    # changes any per-tenant result bitwise breaks the routing invariant.
    # Speedup floors are only enforced at points the host can physically
    # show (workers <= cores); an honest ~1.0x elsewhere is a pass. The
    # cluster curve threads regardless of the `parallel` feature; the
    # replay curve additionally needs it to fan out.
    cluster = scenarios.get("cluster")
    cluster_ok = isinstance(cluster, dict) and isinstance(
        cluster.get("points"), list)
    check(
        "cluster.present",
        cluster_ok,
        "BENCH_2 carries a cluster scaling block",
    )
    if not cluster_ok:
        return
    check(
        "cluster.results_identical",
        cluster.get("results_identical") is True,
        "per-tenant results bitwise identical at every shard count",
    )
    points = cluster["points"]
    check(
        "cluster.points",
        len(points) >= 1 and points[0]["workers"] == 1,
        f"{len(points)} point(s), curve starts at 1 shard",
    )
    threads = cluster["threads_available"]
    parallel = cluster.get("parallel_feature", False)
    for point in points:
        workers = point["workers"]
        if workers <= 1:
            continue
        label = f"cluster.speedup_{workers}shards"
        if threads >= workers:
            check(
                label,
                point["cluster_speedup"] > 1.2,
                f'{point["cluster_speedup"]:.2f}x thread-per-shard over '
                f"{workers} shards ({threads} threads available)",
            )
            if parallel:
                check(
                    f"cluster.replay_speedup_{workers}shards",
                    point["replay_speedup"] > 1.2,
                    f'{point["replay_speedup"]:.2f}x sharded replay over '
                    f"{workers} shards",
                )
        else:
            note = cluster.get("note", "")
            print(
                f"[SKIP] {label}: only {threads} thread(s) available for "
                f'{workers} shards, measured {point["cluster_speedup"]:.2f}x'
                + (f" — {note}" if note else "")
            )


def check_service_network(scenarios, scenario_baseline, floor):
    """BENCH_2: the TCP front door under concurrent load (load_gen)."""
    # Produced by `load_gen` driving a tenant fleet over real loopback
    # sockets. `metrics_consistent` is a hard correctness gate — the
    # counters scraped from the wire either account for every request the
    # generator sent or the observability layer is lying. Throughput gets
    # an absolute floor well under the committed numbers (socket framing
    # on a noisy shared runner), latency is ceilinged against the
    # committed baseline like BENCH_1's streaming block, and the shed
    # probe's counters are deterministic, so they are gated exactly.
    network_floor_aps = 300.0
    network = scenarios.get("service_network")
    network_ok = isinstance(network, dict)
    check(
        "service_network.present",
        network_ok,
        "report carries a service_network block",
    )
    if not network_ok:
        return
    check(
        "service_network.metrics_consistent",
        network.get("metrics_consistent") is True,
        "scraped counters account for every request sent"
        + (f' — {"; ".join(network["metrics_notes"])}'
           if network.get("metrics_notes") else ""),
    )
    check(
        "service_network.alerts",
        network["alerts"] > 500,
        f'{network["alerts"]} alerts served to {network["tenants"]} '
        "concurrent tenants",
    )
    check(
        "service_network.alerts_per_sec",
        network["alerts_per_sec"] >= network_floor_aps,
        f'{network["alerts_per_sec"]:.0f} alerts/sec sustained '
        f"(absolute floor {network_floor_aps:.0f})",
    )
    lat = network["latency_micros"]
    check(
        "service_network.latency_sane",
        0.0 < lat["p50"] <= lat["p99"],
        f'p50 {lat["p50"]:.0f}us <= p99 {lat["p99"]:.0f}us',
    )
    # A sharded run (load_gen --shards N) carries a per-shard breakdown;
    # the shard slices must account for exactly the aggregate burst.
    shards = network.get("shards", 1)
    if shards > 1:
        per_shard = network.get("per_shard")
        per_shard_ok = isinstance(per_shard, list) and len(per_shard) == shards
        shard_alerts = (
            sum(s["alerts"] for s in per_shard) if per_shard_ok else -1)
        check(
            "service_network.per_shard",
            per_shard_ok and shard_alerts == network["alerts"],
            f"{len(per_shard) if per_shard_ok else 0} shard slice(s) "
            f"accounting for {shard_alerts}/{network['alerts']} alerts",
        )
    probe = network.get("shed_probe")
    probe_ok = isinstance(probe, dict)
    check(
        "service_network.shed_probe.present",
        probe_ok,
        "report carries the over-quota shed probe",
    )
    if probe_ok:
        check(
            "service_network.shed_probe.sheds",
            probe["shed"] >= 1 and probe["served"] >= 1,
            f'{probe["burst"]}-deep burst vs quota {probe["quota"]}: '
            f'{probe["served"]} served, {probe["shed"]} shed',
        )
        check(
            "service_network.shed_probe.retries",
            probe["retried_ok"] == probe["shed"],
            f'{probe["retried_ok"]}/{probe["shed"]} shed pushes succeeded '
            "on retry",
        )
    if scenario_baseline is not None:
        network_base = scenario_baseline.get("service_network")
        if network_base:
            aps_floor = network_base["alerts_per_sec"] * floor
            check(
                "service_network.alerts_per_sec_vs_baseline",
                network["alerts_per_sec"] >= aps_floor,
                f'{network["alerts_per_sec"]:.0f} alerts/sec (floor '
                f"{aps_floor:.0f}, baseline "
                f'{network_base["alerts_per_sec"]:.0f})',
            )
            p99_ceiling = network_base["latency_micros"]["p99"] / floor
            check(
                "service_network.p99_micros",
                lat["p99"] <= p99_ceiling,
                f'{lat["p99"]:.0f}us (ceiling {p99_ceiling:.0f}us, baseline '
                f'{network_base["latency_micros"]["p99"]:.0f}us)',
            )
        else:
            check(
                "service_network.alerts_per_sec_vs_baseline",
                False,
                "section missing from the committed scenario baseline; "
                "regenerate BENCH_2.json to re-arm the gate",
            )


def check_service_chaos(scenarios, scenario_baseline, floor):
    """BENCH_2: the front door under injected faults (load_gen --chaos)."""
    # Produced by `load_gen --chaos`: the fleet driven through a seeded
    # fault-injecting proxy (duplicates, resets, delays, plus two scripted
    # faults that guarantee the retry and dedup paths fire every run).
    # `bitwise_equal` and `recovery_converged` are hard correctness gates —
    # exactly-once either holds under faults or the protocol is broken.
    # Goodput gets a low absolute floor: the run spends real wall-clock in
    # backoff sleeps by design.
    chaos_floor_aps = 100.0
    chaos = scenarios.get("service_chaos")
    chaos_ok = isinstance(chaos, dict)
    check(
        "service_chaos.present",
        chaos_ok,
        "report carries a service_chaos block",
    )
    if not chaos_ok:
        return
    check(
        "service_chaos.bitwise_equal",
        chaos.get("bitwise_equal") is True,
        "faulted results match the unfaulted control bitwise",
    )
    check(
        "service_chaos.recovery_converged",
        chaos.get("recovery_converged") is True,
        "kill-and-recover probe converged through the WAL",
    )
    check(
        "service_chaos.faults_injected",
        chaos["faults_injected"] >= 10,
        f'{chaos["faults_injected"]} faults injected — the proxy did real '
        "damage",
    )
    check(
        "service_chaos.retries",
        chaos["retries"] >= 1,
        f'{chaos["retries"]} client retries ({chaos["reconnects"]} '
        "reconnects)",
    )
    check(
        "service_chaos.duplicates_suppressed",
        chaos["duplicates_suppressed"] + chaos["duplicates_replayed"] >= 1,
        f'{chaos["duplicates_suppressed"]} suppressed / '
        f'{chaos["duplicates_replayed"]} replayed server-side',
    )
    check(
        "service_chaos.goodput_alerts_per_sec",
        chaos["goodput_alerts_per_sec"] >= chaos_floor_aps,
        f'{chaos["goodput_alerts_per_sec"]:.0f} alerts/sec goodput under '
        f"faults (absolute floor {chaos_floor_aps:.0f})",
    )
    if scenario_baseline is not None:
        chaos_base = scenario_baseline.get("service_chaos")
        if chaos_base:
            goodput_floor = chaos_base["goodput_alerts_per_sec"] * floor
            check(
                "service_chaos.goodput_vs_baseline",
                chaos["goodput_alerts_per_sec"] >= goodput_floor,
                f'{chaos["goodput_alerts_per_sec"]:.0f} alerts/sec (floor '
                f"{goodput_floor:.0f}, baseline "
                f'{chaos_base["goodput_alerts_per_sec"]:.0f})',
            )
        else:
            check(
                "service_chaos.goodput_vs_baseline",
                False,
                "section missing from the committed scenario baseline; "
                "regenerate BENCH_2.json to re-arm the gate",
            )


def run_section(name, fn, *args):
    """Run one section; a crash (missing key, wrong shape) fails that
    section without silencing the others."""
    try:
        fn(*args)
    except (KeyError, TypeError, IndexError) as e:
        check(f"{name}.well_formed", False,
              f"section check crashed on malformed report: {e!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        help="committed BENCH_1.json baseline "
                             "(required by the bench1 section)")
    parser.add_argument("--throughput",
                        help="freshly measured BENCH_1.json "
                             "(required by the bench1 section)")
    parser.add_argument("--scenarios",
                        help="freshly measured BENCH_2.json (required by "
                             "every section except bench1)")
    parser.add_argument("--scenario-baseline", default=None,
                        help="committed BENCH_2.json baseline (enables "
                             "per-scenario, service and network floors "
                             "against the committed numbers)")
    parser.add_argument("--sections", default=",".join(SECTIONS),
                        help="comma-separated subset of: "
                             + ", ".join(SECTIONS))
    parser.add_argument("--floor", type=float, default=0.25,
                        help="fraction of the baseline the fresh run must "
                             "retain")
    args = parser.parse_args()

    selected = [s.strip() for s in args.sections.split(",") if s.strip()]
    unknown = [s for s in selected if s not in SECTIONS]
    if unknown:
        parser.error(f"unknown section(s): {', '.join(unknown)}")

    bench1_sections = {"bench1", "lp_kernel"}
    needs_bench1 = bool(bench1_sections & set(selected))
    needs_scenarios = any(s not in bench1_sections for s in selected)
    if needs_bench1 and not (args.baseline and args.throughput):
        parser.error("the bench1 and lp_kernel sections need --baseline "
                     "and --throughput")
    if needs_scenarios and not args.scenarios:
        parser.error("every section except bench1/lp_kernel needs "
                     "--scenarios")

    baseline = load_json(args.baseline, "bench1") if needs_bench1 else None
    fresh = load_json(args.throughput, "bench1") if needs_bench1 else None
    scenarios = (load_json(args.scenarios, "scenarios")
                 if needs_scenarios else None)
    scenario_baseline = load_json(args.scenario_baseline, "scenario_baseline")

    if baseline is not None and fresh is not None:
        if "bench1" in selected:
            run_section("bench1", check_bench1, baseline, fresh, args.floor)
        if "lp_kernel" in selected:
            run_section("lp_kernel", check_lp_kernel, baseline, fresh,
                        args.floor)
    if scenarios is not None:
        if "scenarios" in selected:
            run_section("scenarios", check_scenarios, scenarios,
                        scenario_baseline, baseline, args.floor)
        if "service_concurrent" in selected:
            run_section("service_concurrent", check_service_concurrent,
                        scenarios, scenario_baseline, args.floor)
        if "durability" in selected:
            run_section("durability", check_durability, scenarios,
                        scenario_baseline, args.floor)
        if "sharding" in selected:
            run_section("sharding", check_sharding, scenarios)
        if "cluster" in selected:
            run_section("cluster", check_cluster, scenarios)
        if "service_network" in selected:
            run_section("service_network", check_service_network, scenarios,
                        scenario_baseline, args.floor)
        if "service_chaos" in selected:
            run_section("service_chaos", check_service_chaos, scenarios,
                        scenario_baseline, args.floor)

    if failures:
        print(f"\n{len(failures)} perf floor(s) violated: "
              f"{', '.join(failures)}")
        return 1
    print("\nall perf floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
