#!/usr/bin/env python3
"""Perf-smoke floor checks for the CI pipeline.

Compares a freshly measured BENCH_1.json (per-alert solve-chain throughput)
against the committed baseline and sanity-checks BENCH_2.json (the scenario
registry replay). Floors are deliberately generous — CI runners are noisy —
so only real regressions (a lost warm-start path, an accidentally quadratic
replay) trip them.

Exit status is non-zero on any violation; every check prints PASS/FAIL so
the workflow log reads as a report.
"""

import argparse
import json
import sys

failures = []


def check(label, ok, detail):
    status = "PASS" if ok else "FAIL"
    print(f"[{status}] {label}: {detail}")
    if not ok:
        failures.append(label)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_1.json baseline")
    parser.add_argument("--throughput", required=True,
                        help="freshly measured BENCH_1.json")
    parser.add_argument("--scenarios", required=True,
                        help="freshly measured BENCH_2.json")
    parser.add_argument("--floor", type=float, default=0.25,
                        help="fraction of the baseline the fresh run must retain")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.throughput) as f:
        fresh = json.load(f)
    with open(args.scenarios) as f:
        scenarios = json.load(f)

    # ---- BENCH_1: solve-chain throughput vs the committed baseline --------
    floor_aps = baseline["alerts_per_sec"] * args.floor
    check(
        "throughput.alerts_per_sec",
        fresh["alerts_per_sec"] >= floor_aps,
        f'{fresh["alerts_per_sec"]:.0f} alerts/sec (floor {floor_aps:.0f}, '
        f'baseline {baseline["alerts_per_sec"]:.0f})',
    )
    floor_hit = baseline["warm_start_hit_rate"] * args.floor
    check(
        "throughput.warm_start_hit_rate",
        fresh["warm_start_hit_rate"] >= floor_hit,
        f'{fresh["warm_start_hit_rate"]:.4f} (floor {floor_hit:.4f})',
    )
    check(
        "throughput.warm_speedup_5type",
        fresh["warm_vs_cold_5type"]["speedup"] >= 1.0,
        f'{fresh["warm_vs_cold_5type"]["speedup"]:.2f}x warm-vs-cold',
    )

    # ---- BENCH_1: streaming (push_alert) decision latency -----------------
    # The streaming block must exist with sane percentiles (a missing or
    # zeroed block means the session ingest path silently stopped being
    # measured), its throughput is floored like the bulk replay, and its p99
    # is ceilinged against the committed baseline: latency is
    # lower-is-better, so the fresh run may be at most 1/floor (4x at the
    # default 0.25) of the baseline p99.
    streaming = fresh.get("streaming")
    streaming_ok = isinstance(streaming, dict) and isinstance(
        streaming.get("latency_micros"), dict)
    check(
        "streaming.present",
        streaming_ok,
        "BENCH_1 carries a streaming latency block",
    )
    if streaming_ok:
        lat = streaming["latency_micros"]
        check(
            "streaming.latency_sane",
            0.0 < lat["p50"] <= lat["p99"],
            f'p50 {lat["p50"]:.1f}us <= p99 {lat["p99"]:.1f}us',
        )
        floor_stream_aps = baseline["streaming"]["alerts_per_sec"] * args.floor
        check(
            "streaming.alerts_per_sec",
            streaming["alerts_per_sec"] >= floor_stream_aps,
            f'{streaming["alerts_per_sec"]:.0f} alerts/sec '
            f"(floor {floor_stream_aps:.0f})",
        )
        p99_ceiling = baseline["streaming"]["latency_micros"]["p99"] / args.floor
        check(
            "streaming.p99_micros",
            lat["p99"] <= p99_ceiling,
            f'{lat["p99"]:.1f}us (ceiling {p99_ceiling:.1f}us, baseline '
            f'{baseline["streaming"]["latency_micros"]["p99"]:.1f}us)',
        )

    # ---- BENCH_2: every registered scenario replays at real throughput ----
    # The throughput floor here is deliberately absolute, not derived from
    # the 7-type BENCH_1 baseline: scenarios are free to be intrinsically
    # heavier (more types, bigger populations). The floor only catches
    # catastrophic regressions like an accidentally quadratic replay.
    scenario_floor_aps = 500.0
    rows = scenarios["scenarios"]
    check("scenarios.count", len(rows) >= 6, f"{len(rows)} scenarios")
    for row in rows:
        name = row["name"]
        check(
            f"scenario.{name}.alerts",
            row["alerts"] > 100,
            f'{row["alerts"]} alerts replayed',
        )
        check(
            f"scenario.{name}.alerts_per_sec",
            row["alerts_per_sec"] >= scenario_floor_aps,
            f'{row["alerts_per_sec"]:.0f} alerts/sec '
            f"(floor {scenario_floor_aps:.0f})",
        )
        check(
            f"scenario.{name}.warm_start_hit_rate",
            row["warm_start_hit_rate"] >= floor_hit,
            f'{row["warm_start_hit_rate"]:.4f} (floor {floor_hit:.4f})',
        )

    # ---- Sharded replay must actually scale on multi-core runners ---------
    # A broken parallel path measures ~1.0x; real sharding on >= 4 cores
    # measures ~3x. The gate sits at 1.3 (not the ~1.5+ the bench output
    # shows on a quiet 4-core host) because shared CI runners are noisy and
    # each best-of-3 leg is only tens of milliseconds.
    sharding = scenarios["sharding"]
    threads = sharding["threads_available"]
    if threads >= 4:
        check(
            "sharding.speedup",
            sharding["speedup"] > 1.3,
            f'{sharding["speedup"]:.2f}x over {sharding["shards"]} shards '
            f"({threads} threads available)",
        )
    else:
        print(
            f"[SKIP] sharding.speedup: only {threads} thread(s) available, "
            f'measured {sharding["speedup"]:.2f}x'
        )

    if failures:
        print(f"\n{len(failures)} perf floor(s) violated: {', '.join(failures)}")
        return 1
    print("\nall perf floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
