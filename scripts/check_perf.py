#!/usr/bin/env python3
"""Perf-smoke floor checks for the CI pipeline.

Compares a freshly measured BENCH_1.json (per-alert solve-chain throughput)
against the committed baseline and sanity-checks BENCH_2.json (the scenario
registry replay). Floors are deliberately generous — CI runners are noisy —
so only real regressions (a lost warm-start path, an accidentally quadratic
replay) trip them.

Exit status is non-zero on any violation; every check prints PASS/FAIL so
the workflow log reads as a report.
"""

import argparse
import json
import sys

failures = []


def check(label, ok, detail):
    status = "PASS" if ok else "FAIL"
    print(f"[{status}] {label}: {detail}")
    if not ok:
        failures.append(label)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_1.json baseline")
    parser.add_argument("--throughput", required=True,
                        help="freshly measured BENCH_1.json")
    parser.add_argument("--scenarios", required=True,
                        help="freshly measured BENCH_2.json")
    parser.add_argument("--scenario-baseline", default=None,
                        help="committed BENCH_2.json baseline (enables "
                             "per-scenario throughput floors for the "
                             "federated workloads)")
    parser.add_argument("--floor", type=float, default=0.25,
                        help="fraction of the baseline the fresh run must retain")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.throughput) as f:
        fresh = json.load(f)
    with open(args.scenarios) as f:
        scenarios = json.load(f)
    scenario_baseline = None
    if args.scenario_baseline:
        with open(args.scenario_baseline) as f:
            scenario_baseline = json.load(f)

    # ---- BENCH_1: solve-chain throughput vs the committed baseline --------
    floor_aps = baseline["alerts_per_sec"] * args.floor
    check(
        "throughput.alerts_per_sec",
        fresh["alerts_per_sec"] >= floor_aps,
        f'{fresh["alerts_per_sec"]:.0f} alerts/sec (floor {floor_aps:.0f}, '
        f'baseline {baseline["alerts_per_sec"]:.0f})',
    )
    floor_hit = baseline["warm_start_hit_rate"] * args.floor
    check(
        "throughput.warm_start_hit_rate",
        fresh["warm_start_hit_rate"] >= floor_hit,
        f'{fresh["warm_start_hit_rate"]:.4f} (floor {floor_hit:.4f})',
    )
    check(
        "throughput.warm_speedup_5type",
        fresh["warm_vs_cold_5type"]["speedup"] >= 1.0,
        f'{fresh["warm_vs_cold_5type"]["speedup"]:.2f}x warm-vs-cold',
    )

    # ---- BENCH_1: streaming (push_alert) decision latency -----------------
    # The streaming block must exist with sane percentiles (a missing or
    # zeroed block means the session ingest path silently stopped being
    # measured), its throughput is floored like the bulk replay, and its p99
    # is ceilinged against the committed baseline: latency is
    # lower-is-better, so the fresh run may be at most 1/floor (4x at the
    # default 0.25) of the baseline p99.
    streaming = fresh.get("streaming")
    streaming_ok = isinstance(streaming, dict) and isinstance(
        streaming.get("latency_micros"), dict)
    check(
        "streaming.present",
        streaming_ok,
        "BENCH_1 carries a streaming latency block",
    )
    if streaming_ok:
        lat = streaming["latency_micros"]
        check(
            "streaming.latency_sane",
            0.0 < lat["p50"] <= lat["p99"],
            f'p50 {lat["p50"]:.1f}us <= p99 {lat["p99"]:.1f}us',
        )
        floor_stream_aps = baseline["streaming"]["alerts_per_sec"] * args.floor
        check(
            "streaming.alerts_per_sec",
            streaming["alerts_per_sec"] >= floor_stream_aps,
            f'{streaming["alerts_per_sec"]:.0f} alerts/sec '
            f"(floor {floor_stream_aps:.0f})",
        )
        p99_ceiling = baseline["streaming"]["latency_micros"]["p99"] / args.floor
        check(
            "streaming.p99_micros",
            lat["p99"] <= p99_ceiling,
            f'{lat["p99"]:.1f}us (ceiling {p99_ceiling:.1f}us, baseline '
            f'{baseline["streaming"]["latency_micros"]["p99"]:.1f}us)',
        )

    # ---- BENCH_1: incremental candidate pruning ---------------------------
    # The skip counters are deterministic (unlike wall-clock), so they are
    # gated tightly: the pruned arm must actually retire most candidate LPs,
    # and the exhaustive arm must still solve one LP per type (proving the
    # comparison measures what it claims). The wall-clock speedup only needs
    # to clear 1.0 loosely — a pruning layer that *slows the solver down*
    # is a regression even on a noisy runner.
    pruning = fresh.get("pruning")
    pruning_ok = isinstance(pruning, dict)
    check("pruning.present", pruning_ok, "BENCH_1 carries a pruning block")
    if pruning_ok:
        check(
            "pruning.pruned_lp_fraction",
            0.5 <= pruning["pruned_lp_fraction"] <= 1.0,
            f'{pruning["pruned_lp_fraction"]:.4f} of candidate LPs pruned',
        )
        check(
            "pruning.exhaustive_arm_is_exhaustive",
            pruning["lp_solves_per_solve_exhaustive"] > 6.0,
            f'{pruning["lp_solves_per_solve_exhaustive"]:.2f} LPs/solve '
            "(7-type game)",
        )
        check(
            "pruning.speedup",
            pruning["speedup"] >= 1.1,
            f'{pruning["speedup"]:.2f}x pruned vs exhaustive',
        )

    # ---- BENCH_2: every registered scenario replays at real throughput ----
    # The throughput floor here is deliberately absolute, not derived from
    # the 7-type BENCH_1 baseline: scenarios are free to be intrinsically
    # heavier (more types, bigger populations). The floor only catches
    # catastrophic regressions like an accidentally quadratic replay.
    scenario_floor_aps = 500.0
    # The federated scenarios are what the incremental solve layer exists
    # for; their pruning skip rate is gated (deterministic) and — when a
    # committed BENCH_2 baseline is supplied — so is their throughput.
    federated = {"multi-site", "metro-grid"}
    baseline_rows = {}
    if scenario_baseline is not None:
        baseline_rows = {
            row["name"]: row for row in scenario_baseline["scenarios"]}
    rows = scenarios["scenarios"]
    check("scenarios.count", len(rows) >= 7, f"{len(rows)} scenarios")
    for row in rows:
        name = row["name"]
        check(
            f"scenario.{name}.alerts",
            row["alerts"] > 100,
            f'{row["alerts"]} alerts replayed',
        )
        check(
            f"scenario.{name}.alerts_per_sec",
            row["alerts_per_sec"] >= scenario_floor_aps,
            f'{row["alerts_per_sec"]:.0f} alerts/sec '
            f"(floor {scenario_floor_aps:.0f})",
        )
        check(
            f"scenario.{name}.warm_start_hit_rate",
            row["warm_start_hit_rate"] >= floor_hit,
            f'{row["warm_start_hit_rate"]:.4f} (floor {floor_hit:.4f})',
        )
        fraction = row.get("pruned_lp_fraction", 0.0)
        check(
            f"scenario.{name}.pruned_lp_fraction_sane",
            0.0 <= fraction < 1.0,
            f"{fraction:.4f} within [0, 1)",
        )
        if name in federated:
            check(
                f"scenario.{name}.pruned_lp_fraction",
                fraction >= 0.5,
                f"{fraction:.4f} of candidate LPs pruned (floor 0.5)",
            )
            if name in baseline_rows:
                scen_floor = baseline_rows[name]["alerts_per_sec"] * args.floor
                check(
                    f"scenario.{name}.alerts_per_sec_vs_baseline",
                    row["alerts_per_sec"] >= scen_floor,
                    f'{row["alerts_per_sec"]:.0f} alerts/sec (floor '
                    f"{scen_floor:.0f}, baseline "
                    f'{baseline_rows[name]["alerts_per_sec"]:.0f})',
                )
            elif scenario_baseline is not None:
                # A federated scenario with no committed baseline row would
                # silently disarm the throughput gate; fail loudly so a
                # stale/renamed BENCH_2 baseline can't mask a regression.
                check(
                    f"scenario.{name}.alerts_per_sec_vs_baseline",
                    False,
                    "scenario missing from the committed scenario baseline; "
                    "regenerate BENCH_2.json to re-arm the gate",
                )

    # ---- BENCH_2: multi-tenant AuditService throughput ---------------------
    # The service front door multiplexes N tenants' owned sessions over a
    # worker pool; its concurrent throughput is floored both absolutely
    # (catastrophic-regression catch) and against the committed baseline
    # (same convention as the federated scenarios). The concurrent-vs-serial
    # speedup is only gated on hosts that can physically show one.
    service = scenarios.get("service_concurrent")
    service_ok = isinstance(service, dict)
    check(
        "service_concurrent.present",
        service_ok,
        "BENCH_2 carries a service_concurrent block",
    )
    if service_ok:
        check(
            "service_concurrent.alerts",
            service["alerts"] > 1000,
            f'{service["alerts"]} alerts served across '
            f'{service["tenants"]} tenants',
        )
        check(
            "service_concurrent.alerts_per_sec",
            service["alerts_per_sec"] >= scenario_floor_aps,
            f'{service["alerts_per_sec"]:.0f} alerts/sec '
            f"(absolute floor {scenario_floor_aps:.0f})",
        )
        if scenario_baseline is not None:
            service_base = scenario_baseline.get("service_concurrent")
            if service_base:
                service_floor = service_base["alerts_per_sec"] * args.floor
                check(
                    "service_concurrent.alerts_per_sec_vs_baseline",
                    service["alerts_per_sec"] >= service_floor,
                    f'{service["alerts_per_sec"]:.0f} alerts/sec (floor '
                    f"{service_floor:.0f}, baseline "
                    f'{service_base["alerts_per_sec"]:.0f})',
                )
            else:
                # A missing committed section would silently disarm the
                # gate; fail loudly so a stale BENCH_2 baseline cannot mask
                # a front-door regression.
                check(
                    "service_concurrent.alerts_per_sec_vs_baseline",
                    False,
                    "section missing from the committed scenario baseline; "
                    "regenerate BENCH_2.json to re-arm the gate",
                )
        service_threads = service["threads_available"]
        if service_threads >= 4 and service["workers"] > 1:
            check(
                "service_concurrent.speedup_vs_serial",
                service["speedup_vs_serial"] > 1.3,
                f'{service["speedup_vs_serial"]:.2f}x over '
                f'{service["workers"]} workers '
                f"({service_threads} threads available)",
            )
        else:
            note = service.get("note", "")
            print(
                f"[SKIP] service_concurrent.speedup_vs_serial: only "
                f"{service_threads} thread(s) available, measured "
                f'{service["speedup_vs_serial"]:.2f}x'
                + (f" — {note}" if note else "")
            )

    # ---- BENCH_2: WAL cost and crash recovery ------------------------------
    # The durability section logs a 10k-alert day through the write-ahead
    # log (fsync on and off) and recovers it from the surviving bytes. The
    # bitwise-equality flag is a hard correctness gate: a recovered day that
    # diverges from the uninterrupted run is a bug regardless of runner
    # noise. Throughput floors are absolute like the scenario replays —
    # fsync-on gets a much lower floor because a barrier per record is
    # disk-bound, not CPU-bound, and CI disks vary wildly.
    durability = scenarios.get("durability")
    durability_ok = isinstance(durability, dict)
    check(
        "durability.present",
        durability_ok,
        "BENCH_2 carries a durability block",
    )
    if durability_ok:
        check(
            "durability.alerts",
            durability["alerts"] >= 10000,
            f'{durability["alerts"]} alerts logged and recovered',
        )
        check(
            "durability.recovered_bitwise_equal",
            durability.get("recovered_bitwise_equal") is True,
            "recovered day matches the uninterrupted run bitwise",
        )
        check(
            "durability.fsync_off_alerts_per_sec",
            durability["fsync_off_alerts_per_sec"] >= scenario_floor_aps,
            f'{durability["fsync_off_alerts_per_sec"]:.0f} alerts/sec '
            f"(floor {scenario_floor_aps:.0f})",
        )
        check(
            "durability.fsync_on_alerts_per_sec",
            durability["fsync_on_alerts_per_sec"] >= 25.0,
            f'{durability["fsync_on_alerts_per_sec"]:.0f} alerts/sec '
            "(floor 25, disk-bound)",
        )
        check(
            "durability.recovery_alerts_per_sec",
            durability["recovery_alerts_per_sec"] >= scenario_floor_aps,
            f'{durability["recovery_alerts_per_sec"]:.0f} alerts/sec '
            f'replayed in {durability["recovery_wall_seconds"]:.3f}s '
            f"(floor {scenario_floor_aps:.0f})",
        )
        if scenario_baseline is not None:
            durability_base = scenario_baseline.get("durability")
            if durability_base:
                recovery_floor = (
                    durability_base["recovery_alerts_per_sec"] * args.floor)
                check(
                    "durability.recovery_vs_baseline",
                    durability["recovery_alerts_per_sec"] >= recovery_floor,
                    f'{durability["recovery_alerts_per_sec"]:.0f} alerts/sec '
                    f"(floor {recovery_floor:.0f}, baseline "
                    f'{durability_base["recovery_alerts_per_sec"]:.0f})',
                )
            else:
                # A missing committed section would silently disarm the
                # gate; fail loudly so a stale BENCH_2 baseline cannot mask
                # a recovery regression.
                check(
                    "durability.recovery_vs_baseline",
                    False,
                    "section missing from the committed scenario baseline; "
                    "regenerate BENCH_2.json to re-arm the gate",
                )

    # ---- Sharded replay must actually scale on multi-core runners ---------
    # The comparison is only meaningful when the binary was built with the
    # `parallel` feature (otherwise replay_sharded runs sequentially and the
    # "speedup" is pure timer noise) — the perf-smoke job always builds with
    # it, so a missing feature flag is a CI misconfiguration and fails hard.
    # On < 4 cores a speedup is physically impossible; BENCH_2 records the
    # honest ~1.0x plus a note, and the gate is skipped. A broken parallel
    # path on >= 4 cores measures ~1.0x; real sharding measures ~3x. The
    # gate sits at 1.3 (not the ~1.5+ the bench output shows on a quiet
    # 4-core host) because shared CI runners are noisy and each best-of-3
    # leg is only tens of milliseconds.
    sharding = scenarios["sharding"]
    threads = sharding["threads_available"]
    check(
        "sharding.parallel_feature",
        sharding.get("parallel_feature", False),
        "bench binary built with the `parallel` feature",
    )
    if threads >= 4:
        check(
            "sharding.speedup",
            sharding["speedup"] > 1.3,
            f'{sharding["speedup"]:.2f}x over {sharding["shards"]} shards '
            f"({threads} threads available)",
        )
    else:
        note = sharding.get("note", "")
        print(
            f"[SKIP] sharding.speedup: only {threads} thread(s) available, "
            f'measured {sharding["speedup"]:.2f}x'
            + (f" — {note}" if note else "")
        )

    if failures:
        print(f"\n{len(failures)} perf floor(s) violated: {', '.join(failures)}")
        return 1
    print("\nall perf floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
