//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of proptest the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`any`], [`ProptestConfig`] and the
//! [`proptest!`] / [`prop_assert!`] macros.
//!
//! Differences from the real crate: failing cases are reported by panic
//! without input shrinking, and case generation is deterministic per test
//! (no persisted failure seeds).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Construct the deterministic case RNG (used by the [`proptest!`] macro).
#[must_use]
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values rejected by `pred`, resampling (bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let value = self.inner.sample(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive samples",
            self.whence
        );
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical "whole domain" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Sample from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

/// Strategy over the whole domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy covering `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Admissible length specifications for [`vec()`](fn@vec): an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The imports property tests conventionally glob in.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert a condition inside a property, with optional formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Run each contained `#[test]` function over randomly generated inputs.
///
/// Supports the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let combined = ($($strategy,)+);
                for case in 0..config.cases {
                    // Deterministic per (test body position, case index):
                    // stable across runs, different across cases.
                    let seed = (case as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (line!() as u64)
                        ^ ((column!() as u64) << 32);
                    let mut rng = $crate::new_rng(seed);
                    let ($($pat,)+) = $crate::Strategy::sample(&combined, &mut rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(1);
        let strat = (0u16..7, 0.0f64..1.0);
        for _ in 0..1000 {
            let (t, f) = strat.sample(&mut rng);
            assert!(t < 7);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(2);
        let strat = collection::vec(0u32..5, 2..6usize);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = collection::vec(0u32..5, 3usize);
        assert_eq!(exact.sample(&mut rng).len(), 3);
    }

    #[test]
    fn map_flat_map_filter_compose() {
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(3);
        let strat = (1usize..4)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n))
            .prop_map(|v| v.len())
            .prop_filter("nonempty", |&n| n > 0);
        for _ in 0..100 {
            let n = strat.sample(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0.0f64..10.0, flag in any::<bool>()) {
            prop_assert!(x >= 0.0);
            prop_assert!(x < 10.0, "range strategy produced {x}, flag {flag}");
        }
    }
}
