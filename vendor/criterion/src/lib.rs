//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple calibrated wall-clock loop instead of the real crate's
//! statistical machinery. Results are printed as `name: mean time/iter` lines
//! so bench runs remain comparable across commits.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time to spend measuring each benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Target wall-clock time to spend warming up each benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(100);

/// Identifier for a parameterized benchmark, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), param),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Passed to the bench closure; runs and times the measured routine.
pub struct Bencher {
    mean_nanos: f64,
    iters_done: u64,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, then run batches until the
    /// measurement budget is spent, recording the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and batch-size calibration.
        let mut batch: u64 = 1;
        let warmup_started = Instant::now();
        loop {
            let started = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = started.elapsed();
            if warmup_started.elapsed() >= TARGET_WARMUP {
                // Pick a batch size that lands near ~10ms per batch.
                let per_iter = elapsed.as_secs_f64() / batch as f64;
                if per_iter > 0.0 {
                    batch = ((0.01 / per_iter).ceil() as u64).max(1);
                }
                break;
            }
            batch = (batch * 2).min(1 << 20);
        }

        // Measurement.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < TARGET_MEASURE {
            let started = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += started.elapsed();
            iters += batch;
        }
        self.mean_nanos = total.as_nanos() as f64 / iters as f64;
        self.iters_done = iters;
    }
}

fn run_bench(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean_nanos: 0.0,
        iters_done: 0,
    };
    f(&mut b);
    let (value, unit) = humanize(b.mean_nanos);
    println!(
        "{label:<60} {value:>10.3} {unit}/iter  ({} iters)",
        b.iters_done
    );
}

fn humanize(nanos: f64) -> (f64, &'static str) {
    if nanos >= 1e9 {
        (nanos / 1e9, "s ")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; this shim sizes its measurement loop
    /// by wall-clock budget, not sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Finish the group (prints a trailing separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup { name }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_bench(&id.to_string(), f);
        self
    }
}

/// Declare a group of bench functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, as in the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            mean_nanos: 0.0,
            iters_done: 0,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.iters_done > 0);
        assert!(b.mean_nanos > 0.0);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("solve", 7).to_string(), "solve/7");
    }

    #[test]
    fn humanize_picks_sane_units() {
        assert_eq!(humanize(12.0).1, "ns");
        assert_eq!(humanize(12_000.0).1, "µs");
        assert_eq!(humanize(12_000_000.0).1, "ms");
        assert_eq!(humanize(2e9).1, "s ");
    }
}
