//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API that `sag-sim`'s binary codec
//! uses: [`BytesMut`] as an append-only build buffer, [`Bytes`] as a cursored
//! read buffer, and the [`Buf`]/[`BufMut`] traits with little-endian integer
//! accessors. Backed by plain `Vec<u8>`; `clone` copies (the real crate
//! refcounts), which is irrelevant at the codec's data volumes.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read-side abstraction: a cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy out the next `dst.len()` bytes and advance.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u8` and advance.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16` and advance.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64` and advance.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst);
    }
}

/// Write-side abstraction: an append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the unread portion.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer over a sub-range of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer for building messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(0x1234);
        buf.put_u8(0x7F);
        buf.put_u64_le(0x0102_0304_0506_0708);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 15);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u16_le(), 0x1234);
        assert_eq!(bytes.get_u8(), 0x7F);
        assert_eq!(bytes.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_and_index_work_on_unread_bytes() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(&[1, 2, 3, 4]);
        let bytes = buf.freeze();
        assert_eq!(&bytes[..], &[1, 2, 3, 4]);
        let tail = bytes.slice(1..3);
        assert_eq!(&tail[..], &[2, 3]);
    }

    #[test]
    fn mut_buffer_is_indexable_for_corruption_tests() {
        let mut m = BytesMut::from(&[9u8, 8, 7][..]);
        m[0] = 0xFF;
        assert_eq!(m.freeze().get_u8(), 0xFF);
    }

    #[test]
    fn reading_via_mut_reference_advances_the_source() {
        let bytes: Bytes = vec![1u8, 0, 2, 0].into();
        let mut cursor = bytes;
        {
            let r = &mut cursor;
            assert_eq!(r.get_u16_le(), 1);
        }
        assert_eq!(cursor.get_u16_le(), 2);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::new();
        let _ = b.get_u8();
    }
}
