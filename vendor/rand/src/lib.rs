//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the API surface the workspace uses:
//! [`Rng::gen_range`] over half-open integer and float ranges,
//! [`Rng::gen_bool`], and a seedable [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high quality for simulation
//! purposes, deterministic for a given seed, and dependency-free.
//!
//! It makes no attempt to reproduce the stream of the real `StdRng`; the
//! workspace only relies on determinism per seed, not on a specific stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can seed and construct an RNG.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface used by the workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<Range<T>>,
    {
        let range = range.into();
        T::sample_range(self, &range)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Map 64 random bits to a uniform f64 in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `range` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Multiply-shift rejection-free mapping; the tiny modulo bias
                // (span / 2^64) is irrelevant at simulation scale.
                let hi = ((rng.next_u64() as u128) * span) >> 64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range range");
        let u = unit_f64(rng.next_u64());
        let v = range.start + u * (range.end - range.start);
        // Guard the right-open invariant against floating-point rounding.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(5..17u32);
            assert!((5..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits} hits for p=0.25");
    }

    #[test]
    fn works_through_dyn_style_generics() {
        fn sum_via_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64() & 0xFF
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sum_via_generic(&mut rng);
    }
}
